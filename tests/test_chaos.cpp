// Chaos tests: fault injection, failure detection, degraded command
// execution, and shard recovery. The headline invariants, each swept over
// multiple seeds:
//   * commands never hang — every execute() returns under any fault
//     schedule (phase deadlines + probes guarantee termination);
//   * degraded commands name the excluded nodes in CommandStats::failures;
//   * local-phase results on surviving nodes are byte-identical to a
//     fault-free twin run (the local phase is ground truth);
//   * after healing, DHT coverage returns to >= 99% of the fault-free
//     baseline within 3 audit passes (ShardRecovery + DhtAudit).
// Set CONCORD_CHAOS_SEED to sweep an extra seed without recompiling.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "services/dht_audit.hpp"
#include "services/null_service.hpp"
#include "services/shard_recovery.hpp"
#include "svc/command_engine.hpp"
#include "workload/workloads.hpp"

namespace concord {
namespace {

constexpr std::size_t kBlk = 256;

std::unique_ptr<core::Cluster> make_cluster(std::uint32_t nodes, std::uint64_t seed,
                                            double loss = 0.0,
                                            std::size_t hash_workers = 1) {
  core::ClusterParams p;
  p.num_nodes = nodes;
  p.max_entities = 64;
  p.seed = seed;
  p.fabric.loss_rate = loss;
  p.hash_workers = hash_workers;
  return std::make_unique<core::Cluster>(p);
}

std::vector<EntityId> populate(core::Cluster& c, std::uint32_t per_node,
                               std::size_t blocks = 12) {
  std::vector<EntityId> out;
  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    for (std::uint32_t i = 0; i < per_node; ++i) {
      mem::MemoryEntity& e = c.create_entity(node_id(n), EntityKind::kProcess, blocks, kBlk);
      workload::fill(e, workload::defaults_for(workload::Kind::kMoldy, n * 10 + i));
      out.push_back(e.id());
    }
  }
  (void)c.scan_all();
  return out;
}

/// Records the ground-truth content seen by the local phase, keyed by
/// (node, entity, block): FNV-1a over the block bytes. Two runs produce
/// equal maps iff the local phase saw byte-identical content.
class DigestService final : public svc::ApplicationService {
 public:
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

  Status service_init(NodeId, svc::Mode, const Config&) override { return Status::kOk; }
  Status collective_start(NodeId, svc::Role, EntityId,
                          std::span<const ContentHash>) override {
    return Status::kOk;
  }
  Result<std::uint64_t> collective_command(NodeId, EntityId, const ContentHash&,
                                           std::span<const std::byte>) override {
    return std::uint64_t{1};
  }
  Status collective_finalize(NodeId, svc::Role, EntityId) override { return Status::kOk; }
  Status local_start(NodeId, EntityId) override { return Status::kOk; }
  Status local_command(NodeId node, EntityId entity, BlockIndex block, const ContentHash&,
                       std::span<const std::byte> data, const std::uint64_t*) override {
    std::uint64_t fnv = 0xcbf29ce484222325ULL;
    for (const std::byte b : data) {
      fnv = (fnv ^ static_cast<std::uint64_t>(b)) * 0x100000001b3ULL;
    }
    digests_[Key{raw(node), raw(entity), block}] = fnv;
    return Status::kOk;
  }
  Status local_finalize(NodeId, EntityId) override { return Status::kOk; }
  Status service_deinit(NodeId) override { return Status::kOk; }

  [[nodiscard]] const std::map<Key, std::uint64_t>& digests() const { return digests_; }

 private:
  std::map<Key, std::uint64_t> digests_;
};

// ---------------------------------------------------------------------------
// Failure detection and epoch-aware placement.
// ---------------------------------------------------------------------------

TEST(FailureDetector, CrashSuspectedWithinOneWindowAndReadmittedAfterRestart) {
  auto c = make_cluster(4, 21);
  EXPECT_EQ(c->detect().epoch, 0u);  // nothing changed: epoch stays put

  c->fault().crash(node_id(2));
  const core::MembershipView& v1 = c->detect();
  EXPECT_EQ(v1.epoch, 1u);
  EXPECT_FALSE(v1.is_alive(node_id(2)));
  EXPECT_EQ(v1.suspected(), std::vector<NodeId>{node_id(2)});
  EXPECT_EQ(v1.alive_count(), 3u);
  EXPECT_EQ(c->placement().epoch(), 1u);  // placement follows the epoch

  c->fault().restart(node_id(2));
  const core::MembershipView& v2 = c->detect();
  EXPECT_EQ(v2.epoch, 2u);
  EXPECT_TRUE(v2.is_alive(node_id(2)));
  EXPECT_TRUE(v2.suspected().empty());
}

TEST(FailureDetector, PauseLooksLikeCrashOnTheWire) {
  auto c = make_cluster(4, 22);
  c->fault().pause(node_id(1));
  EXPECT_FALSE(c->detect().is_alive(node_id(1)));
  c->fault().resume(node_id(1));
  EXPECT_TRUE(c->detect().is_alive(node_id(1)));
}

TEST(FailureDetector, ProbeVerdictsMatchReality) {
  auto c = make_cluster(3, 23);
  bool alive_verdict = false, dead_verdict = true;
  c->detector().probe(node_id(0), node_id(1), [&](bool alive) { alive_verdict = alive; });
  c->fault().crash(node_id(2));
  c->detector().probe(node_id(0), node_id(2), [&](bool alive) { dead_verdict = alive; });
  c->sim().run();
  EXPECT_TRUE(alive_verdict);
  EXPECT_FALSE(dead_verdict);
}

TEST(Placement, DeadHomeRemapsToNextAliveSuccessorAndSnapsBack) {
  dht::Placement p(4);
  const ContentHash h{0x1234, 0x5678};
  const NodeId home = p.owner(h);

  std::vector<bool> alive(4, true);
  alive[raw(home)] = false;
  p.set_view(1, alive);
  const NodeId successor = p.owner(h);
  EXPECT_NE(successor, home);
  EXPECT_EQ(raw(successor), (raw(home) + 1) % 4);  // next alive neighbor

  // Two dead in a row: skips to the next alive one.
  alive[(raw(home) + 1) % 4] = false;
  p.set_view(2, alive);
  EXPECT_EQ(raw(p.owner(h)), (raw(home) + 2) % 4);

  p.set_view(3, {});  // everyone back up
  EXPECT_EQ(p.owner(h), home);
  // owner_in() diffs arbitrary views without touching the installed one.
  EXPECT_EQ(p.owner_in(alive, h), node_id((raw(home) + 2) % 4));
  EXPECT_EQ(p.owner(h), home);
}

TEST(FaultInjector, CrashClearsShardButPausePreservesIt) {
  auto c = make_cluster(4, 24);
  populate(*c, 1);

  // Find a node whose shard is non-empty, pause it: state intact.
  std::uint32_t victim = 0;
  for (; victim < 4; ++victim) {
    if (c->daemon(node_id(victim)).store().unique_hashes() > 0) break;
  }
  ASSERT_LT(victim, 4u);
  const std::size_t before = c->daemon(node_id(victim)).store().unique_hashes();
  c->fault().pause(node_id(victim));
  EXPECT_EQ(c->daemon(node_id(victim)).store().unique_hashes(), before);
  c->fault().resume(node_id(victim));

  // Crash it: the shard (volatile state) dies with the node.
  c->fault().crash(node_id(victim));
  EXPECT_EQ(c->daemon(node_id(victim)).store().unique_hashes(), 0u);
  EXPECT_TRUE(c->fault().is_crashed(node_id(victim)));
  c->fault().restart(node_id(victim));
  EXPECT_FALSE(c->fault().is_down(node_id(victim)));
}

TEST(FaultInjector, RandomScheduleIsDeterministicAndSparesTheController) {
  Rng a(99), b(99);
  const auto s1 = net::FaultInjector::random_schedule(a, 6, 4, sim::kSecond);
  const auto s2 = net::FaultInjector::random_schedule(b, 6, 4, sim::kSecond);
  ASSERT_EQ(s1.size(), s2.size());
  // Every fault comes paired with its heal (partitions expand to two cut +
  // two heal events), so at least 2 events per scheduled fault.
  EXPECT_GE(s1.size(), 8u);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].at, s2[i].at);
    EXPECT_EQ(s1[i].kind, s2[i].kind);
    EXPECT_EQ(s1[i].a, s2[i].a);
    EXPECT_EQ(s1[i].b, s2[i].b);
    EXPECT_NE(s1[i].a, node_id(0));  // the spare is never faulted
    EXPECT_LT(s1[i].at, sim::kSecond);
    if (i > 0) {
      EXPECT_GE(s1[i].at, s1[i - 1].at);  // sorted by time
    }
  }
}

// ---------------------------------------------------------------------------
// Degraded command execution.
// ---------------------------------------------------------------------------

TEST(ChaosCommand, KnownDeadNodeIsExcludedUpFront) {
  auto c = make_cluster(4, 31);
  const auto ses = populate(*c, 1);
  c->fault().crash(node_id(2));
  (void)c->detect();  // membership now knows

  services::NullService null;
  svc::CommandEngine engine(*c);
  svc::CommandSpec spec;
  spec.service_entities = ses;
  const svc::CommandStats s = engine.execute(null, spec);

  EXPECT_EQ(s.status, Status::kDegraded);
  ASSERT_EQ(s.failures.size(), 1u);
  EXPECT_EQ(s.failures[0].node, node_id(2));
  EXPECT_EQ(s.failures[0].reason, Status::kUnavailable);
  // The survivors still ran the whole local phase.
  EXPECT_EQ(s.local_blocks, (ses.size() - 1) * 12u);
}

TEST(ChaosCommand, UnknownCrashIsDiscoveredAtThePhaseDeadline) {
  auto c = make_cluster(4, 32);
  const auto ses = populate(*c, 1);
  c->fault().crash(node_id(1));  // no detect(): the engine must find out itself

  services::NullService null;
  svc::CommandEngine engine(*c);
  svc::CommandSpec spec;
  spec.service_entities = ses;
  const svc::CommandStats s = engine.execute(null, spec);

  EXPECT_EQ(s.status, Status::kDegraded);
  ASSERT_GE(s.failures.size(), 1u);
  EXPECT_EQ(s.failures[0].node, node_id(1));
  EXPECT_EQ(s.local_blocks, (ses.size() - 1) * 12u);
}

TEST(ChaosCommand, ZeroDeadlineDisablesFailureHandling) {
  // Sanity for the opt-out: with deadlines off and no faults, commands run
  // exactly as before (the legacy stall-forever contract is only reachable
  // with a fault, which this test does not inject).
  auto c = make_cluster(3, 33);
  const auto ses = populate(*c, 1);
  services::NullService null;
  svc::CommandEngine engine(*c);
  svc::CommandSpec spec;
  spec.service_entities = ses;
  spec.phase_deadline = 0;
  const svc::CommandStats s = engine.execute(null, spec);
  EXPECT_TRUE(ok(s.status));
  EXPECT_TRUE(s.failures.empty());
}

TEST(ChaosCommand, BarrierToleratesAckLossUnderHeavyDatagramLoss) {
  // 30% loss makes reliable-class ack losses (sender kTimeout, receiver
  // already handled) common. Idempotent per-node barriers must neither
  // double-count nor stall, and nothing should be excluded: every node is
  // alive and answers probes.
  auto c = make_cluster(4, 34, /*loss=*/0.3);
  const auto ses = populate(*c, 1);
  services::NullService null;
  svc::CommandEngine engine(*c);
  svc::CommandSpec spec;
  spec.service_entities = ses;
  for (int i = 0; i < 3; ++i) {
    const svc::CommandStats s = engine.execute(null, spec);
    EXPECT_TRUE(ok(s.status)) << to_string(s.status);
    EXPECT_TRUE(s.failures.empty());
    EXPECT_EQ(s.local_blocks, ses.size() * 12u);
  }
}

TEST(ChaosCommand, LocalPhaseResultsByteIdenticalToFaultFreeRun) {
  // Twin clusters, same seed and content; one crashes node 2 mid-fleet.
  // The local phase is driven purely by ground truth, so the digests the
  // surviving nodes record must match the fault-free run byte for byte.
  auto clean = make_cluster(4, 35);
  auto chaos = make_cluster(4, 35);
  const auto ses_clean = populate(*clean, 1);
  const auto ses_chaos = populate(*chaos, 1);
  ASSERT_EQ(ses_clean.size(), ses_chaos.size());

  DigestService clean_svc, chaos_svc;
  svc::CommandEngine clean_engine(*clean), chaos_engine(*chaos);
  svc::CommandSpec spec;
  spec.service_entities = ses_clean;

  const svc::CommandStats cs = clean_engine.execute(clean_svc, spec);
  ASSERT_TRUE(ok(cs.status));

  chaos->fault().crash(node_id(2));
  (void)chaos->detect();
  spec.service_entities = ses_chaos;
  const svc::CommandStats xs = chaos_engine.execute(chaos_svc, spec);
  EXPECT_EQ(xs.status, Status::kDegraded);

  // Every digest the chaos run recorded appears identically in the clean
  // run, and the chaos run recorded everything except node 2's blocks.
  for (const auto& [key, digest] : chaos_svc.digests()) {
    const auto it = clean_svc.digests().find(key);
    ASSERT_NE(it, clean_svc.digests().end());
    EXPECT_EQ(it->second, digest);
  }
  std::size_t clean_on_survivors = 0;
  for (const auto& [key, digest] : clean_svc.digests()) {
    if (std::get<0>(key) != 2u) ++clean_on_survivors;
  }
  EXPECT_EQ(chaos_svc.digests().size(), clean_on_survivors);
}

// ---------------------------------------------------------------------------
// Recovery: the DHT coverage hole closes after healing.
// ---------------------------------------------------------------------------

TEST(ShardRecovery, RepublishesRemappedEntriesAfterCrashAndHeal) {
  auto c = make_cluster(4, 41);
  populate(*c, 1);
  const std::size_t baseline = c->total_unique_hashes();
  ASSERT_GT(baseline, 0u);
  services::ShardRecovery recovery(*c);

  c->fault().crash(node_id(1));
  (void)c->detect();  // epoch 1: survivors republish node 1's hashes
  EXPECT_GT(recovery.last_report().republished, 0u);

  c->fault().restart(node_id(1));
  (void)c->detect();  // epoch 2: ownership snaps back, republish again

  services::DhtAudit audit(*c);
  (void)audit.run_to_convergence(3);
  EXPECT_GE(c->total_unique_hashes() * 100, baseline * 99);
}

TEST(ShardRecovery, DepartureRacingOwnerCrashConvergesAfterAudit) {
  auto c = make_cluster(4, 42);
  const auto ses = populate(*c, 1);

  // Find an entity with a hash owned by a *different* node, then crash that
  // owner just before the departure scrub: the removes blackhole.
  const EntityId victim = ses[1];
  const NodeId host = c->registry().host_of(victim);
  NodeId owner = host;
  c->daemon(host).block_map().for_each(
      [&](const ContentHash& h, const std::vector<mem::BlockLocation>& locs) {
        if (owner != host) return;
        for (const mem::BlockLocation& loc : locs) {
          if (loc.entity == victim && c->placement().owner(h) != host) {
            owner = c->placement().owner(h);
            return;
          }
        }
      });
  ASSERT_NE(owner, host);

  c->fault().crash(owner);
  c->depart_entity(victim);  // scrub datagrams to the dead owner vanish
  c->fault().restart(owner);
  (void)c->detect();

  services::DhtAudit audit(*c);
  (void)audit.run_to_convergence(3);

  // No shard still advertises the departed entity...
  for (std::uint32_t n = 0; n < c->num_nodes(); ++n) {
    c->daemon(node_id(n)).store().for_each_entry(
        [&](const ContentHash&, const std::uint64_t* words, std::size_t nwords) {
          for (std::size_t w = 0; w < nwords; ++w) {
            if (raw(victim) / 64 == w) {
              EXPECT_EQ(words[w] & (1ULL << (raw(victim) % 64)), 0u);
            }
          }
        });
  }
  // ...and every live entity's coverage is intact.
  const services::AuditReport check = audit.run();
  EXPECT_TRUE(check.clean());
}

TEST(DhtAudit, MidRunLossSpikeHealsOnceLossClears) {
  auto c = make_cluster(4, 43);
  populate(*c, 1);
  services::DhtAudit audit(*c);
  ASSERT_TRUE(audit.run().clean());  // lossless baseline needs no repair

  c->fabric().set_loss_rate(0.6);  // the network degrades mid-run
  for (std::uint32_t n = 0; n < c->num_nodes(); ++n) {
    mem::MemoryEntity& e = c->create_entity(node_id(n), EntityKind::kProcess, 12, kBlk);
    workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 70 + n));
  }
  (void)c->scan_all();  // many of these updates are lost

  c->fabric().set_loss_rate(0.0);  // and recovers
  (void)audit.run_to_convergence();
  EXPECT_TRUE(audit.run().clean());
}

// ---------------------------------------------------------------------------
// Seeded chaos sweep: the acceptance invariants, end to end.
// ---------------------------------------------------------------------------

void run_chaos_sweep(std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  constexpr std::uint32_t kNodes = 6;
  // hash_workers=2 exercises the HashPool threads under chaos (TSan soak).
  auto clean = make_cluster(kNodes, seed, 0.0, /*hash_workers=*/2);
  auto chaos = make_cluster(kNodes, seed, 0.0, /*hash_workers=*/2);
  const auto ses_clean = populate(*clean, 1);
  const auto ses_chaos = populate(*chaos, 1);
  const std::size_t baseline = clean->total_unique_hashes();
  ASSERT_GT(baseline, 0u);

  services::ShardRecovery recovery(*chaos);
  Rng rng(seed * 7919 + 1);
  const auto schedule = net::FaultInjector::random_schedule(
      rng, kNodes, /*faults=*/3, /*horizon=*/800 * sim::kMillisecond);
  chaos->fault().schedule(schedule);

  // Fault-free twin: reference digests for the byte-identical invariant.
  DigestService clean_svc;
  svc::CommandEngine clean_engine(*clean);
  svc::CommandSpec spec;
  spec.service_entities = ses_clean;
  ASSERT_TRUE(ok(clean_engine.execute(clean_svc, spec).status));

  // Chaos run: commands interleave with the fault schedule; detection
  // windows (and the auto-registered recovery) run between commands.
  svc::CommandEngine chaos_engine(*chaos);
  spec.service_entities = ses_chaos;
  for (int round = 0; round < 3; ++round) {
    DigestService round_svc;
    const svc::CommandStats s = chaos_engine.execute(round_svc, spec);
    // Invariant: commands terminate and report any exclusions.
    ASSERT_TRUE(ok(s.status) || s.status == Status::kDegraded) << to_string(s.status);
    EXPECT_EQ(s.status == Status::kDegraded, !s.failures.empty());
    for (const svc::NodeFailure& f : s.failures) {
      EXPECT_NE(f.node, node_id(0));  // the spare controller is never faulted
    }
    // Invariant: surviving nodes' local-phase digests match the clean twin.
    for (const auto& [key, digest] : round_svc.digests()) {
      const auto it = clean_svc.digests().find(key);
      ASSERT_NE(it, clean_svc.digests().end());
      EXPECT_EQ(it->second, digest);
    }
    (void)chaos->detect();
  }

  // Heal everything, let two detection windows readmit + settle, audit.
  chaos->fault().heal_all();
  (void)chaos->detect();
  (void)chaos->detect();
  EXPECT_EQ(chaos->fault().down_count(), 0u);
  EXPECT_EQ(chaos->membership().alive_count(), kNodes);

  services::DhtAudit audit(*chaos);
  (void)audit.run_to_convergence(3);
  // Invariant: post-heal coverage within 99% of the fault-free baseline.
  EXPECT_GE(chaos->total_unique_hashes() * 100, baseline * 99);
}

TEST(ChaosSweep, MixedOverloadAndPauseConvergesAfterRecovery) {
  // Overload protection live (bounded ingress, AIMD, breaker, retry budget)
  // while a node pauses mid-run: full-rate scans overload the fabric, the
  // paused node goes silent, a command executes through the mess. The
  // invariants: commands terminate, control traffic is never shed even at
  // full queues, and once the node resumes and the operator lifts the
  // ingress bound, the audit converges to ground truth.
  constexpr std::uint32_t kN = 6;
  core::ClusterParams p;
  p.num_nodes = kN;
  p.max_entities = 64;
  p.seed = 4242;
  p.update_batching.mtu_bytes = 512;
  p.fabric.ingress_queue_limit = 12;
  p.fabric.ingress_service = 50 * sim::kMicrosecond;
  p.fabric.retry_budget = 20 * sim::kMillisecond;
  p.fabric.breaker_threshold = 6;
  p.pressure.enabled = true;
  auto c = std::make_unique<core::Cluster>(p);
  const auto ids = populate(*c, 1, 128);

  svc::CommandEngine engine(*c);
  for (int round = 0; round < 4; ++round) {
    for (const EntityId id : ids) {
      workload::mutate(c->entity(id), 1.0,
                       static_cast<std::uint64_t>(round) * 97 + raw(id));
    }
    if (round == 1) c->fault().pause(node_id(3));
    if (round == 3) c->fault().resume(node_id(3));
    (void)c->scan_all();
    (void)c->detect();
  }
  // A command through the pressured, partially-recovered site terminates.
  DigestService svc_probe;
  svc::CommandSpec spec;
  spec.service_entities = ids;
  const svc::CommandStats s = engine.execute(svc_probe, spec);
  ASSERT_TRUE(ok(s.status) || s.status == Status::kDegraded) << to_string(s.status);

  // Overload really bit, but the priority class held.
  EXPECT_GT(c->fabric().total_traffic().msgs_shed, 0u);
  EXPECT_EQ(c->fabric().shed_of_type(net::MsgType::kHeartbeat), 0u);
  EXPECT_EQ(c->fabric().shed_of_type(net::MsgType::kCommandControl), 0u);
  EXPECT_EQ(c->fabric().shed_of_type(net::MsgType::kCommandAck), 0u);
  EXPECT_EQ(c->fabric().shed_of_type(net::MsgType::kCreditGrant), 0u);

  // Recovery: everyone back, bound lifted, audit closes the gap.
  c->fault().heal_all();
  (void)c->detect();
  (void)c->detect();
  EXPECT_EQ(c->membership().alive_count(), kN);
  c->fabric().set_ingress_queue_limit(0);
  services::DhtAudit audit(*c);
  (void)audit.run_to_convergence();
  EXPECT_TRUE(audit.run().clean());
}

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, InvariantsHoldUnderRandomFaultSchedule) { run_chaos_sweep(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep, ::testing::Values(101, 202, 303, 404, 505));

TEST(ChaosSweep, EnvironmentSeedOverride) {
  const char* env = std::getenv("CONCORD_CHAOS_SEED");
  if (env == nullptr) GTEST_SKIP() << "CONCORD_CHAOS_SEED not set";
  run_chaos_sweep(std::strtoull(env, nullptr, 10));
}

// ---------------------------------------------------------------------------
// Sharded scan epochs: worker-count invariance under faults.
// ---------------------------------------------------------------------------

struct RunFingerprint {
  std::string metrics;
  std::string trace;
  sim::Time now = 0;
};

/// A lossy run with a mid-run crash + heal, causal tracing on, under
/// `workers` scan-pool threads. Every observable the run produces — metric
/// snapshot bytes, Chrome-trace bytes, final virtual clock — is returned so
/// worker counts can be compared bit-for-bit.
RunFingerprint chaos_fingerprint(std::size_t workers) {
  core::ClusterParams p;
  p.num_nodes = 6;
  p.max_entities = 64;
  p.seed = 909;
  p.fabric.loss_rate = 0.05;
  p.trace_propagation = true;
  p.sim_workers = workers;
  auto c = std::make_unique<core::Cluster>(p);
  const auto ids = populate(*c, 1, 24);
  for (int round = 0; round < 4; ++round) {
    for (const EntityId id : ids) {
      workload::mutate(c->entity(id), 0.5,
                       static_cast<std::uint64_t>(round) * 131 + raw(id));
    }
    if (round == 1) c->fault().crash(node_id(2));
    if (round == 2) c->fault().heal_all();
    (void)c->scan_all();
    (void)c->detect();
  }
  return RunFingerprint{c->metrics().to_json(), c->tracer().to_chrome_json(),
                        c->sim().now()};
}

TEST(ShardedScan, ChaosRunByteIdenticalAcrossWorkerCounts) {
  // The sim_workers knob must change real wall-time only: the staged scan
  // pipeline replays sends in canonical node order, so rng draws, losses,
  // crash cleanup, traces, and metric bytes cannot depend on worker count —
  // even with a node crashing (and its staged inbox draining) mid-run.
  const RunFingerprint serial = chaos_fingerprint(1);
  EXPECT_GT(serial.now, 0u);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const RunFingerprint sharded = chaos_fingerprint(workers);
    EXPECT_EQ(serial.metrics, sharded.metrics) << workers << " workers";
    EXPECT_EQ(serial.trace, sharded.trace) << workers << " workers";
    EXPECT_EQ(serial.now, sharded.now) << workers << " workers";
  }
}

}  // namespace
}  // namespace concord
