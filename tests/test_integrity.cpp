// End-to-end data-integrity tests: the checksummed wire leg under chaos
// (watchdog conservation must hold while corrupted datagrams are dropped and
// retried), the integrity scrub's quarantine-and-repair cycle at every
// replication level, and the audit-driven detection of silent memory rot.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "services/dht_audit.hpp"
#include "services/integrity_scrub.hpp"
#include "services/null_service.hpp"
#include "svc/command_engine.hpp"
#include "workload/workloads.hpp"

namespace concord {
namespace {

struct IntegrityRigParams {
  std::uint32_t nodes = 4;
  std::uint64_t seed = 1;
  std::uint32_t replication = 1;
  double loss = 0.0;
  double corrupt = 0.0;
  double duplicate = 0.0;
  bool checksums = false;
  bool watchdog = false;
};

std::unique_ptr<core::Cluster> make_cluster(const IntegrityRigParams& rp) {
  core::ClusterParams p;
  p.num_nodes = rp.nodes;
  p.max_entities = 64;
  p.seed = rp.seed;
  p.dht_replication = rp.replication;
  p.fabric.loss_rate = rp.loss;
  p.fabric.corrupt_rate = rp.corrupt;
  p.fabric.duplicate_rate = rp.duplicate;
  p.fabric.checksum_enabled = rp.checksums;
  p.watchdog.enabled = rp.watchdog;
  return std::make_unique<core::Cluster>(p);
}

std::vector<EntityId> populate(core::Cluster& c, std::size_t blocks = 12) {
  std::vector<EntityId> out;
  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    mem::MemoryEntity& e = c.create_entity(node_id(n), EntityKind::kProcess, blocks, 256);
    workload::fill(e, workload::defaults_for(workload::Kind::kMoldy, n + 1));
    out.push_back(e.id());
  }
  (void)c.scan_all();
  return out;
}

void run_null_command(core::Cluster& c, const std::vector<EntityId>& ses) {
  services::NullService null;
  svc::CommandEngine engine(c);
  svc::CommandSpec spec;
  spec.service_entities = ses;
  (void)engine.execute(null, spec);
}

// ------------------------------------------------ wire checksums + watchdog

TEST(Integrity, ConservationHoldsUnderChecksummedChaos) {
  // Satellite (a): corruption + loss + duplication, checksums on. Corrupted
  // datagrams are detected, dropped, and counted; the reliable class retries
  // through the normal backoff; the conservation identity stays violation-
  // free with the corrupt-dropped term included.
  IntegrityRigParams rp;
  rp.seed = 71;
  rp.loss = 0.15;
  rp.corrupt = 0.25;
  rp.duplicate = 0.10;
  rp.checksums = true;
  rp.watchdog = true;
  auto c = make_cluster(rp);
  const auto ses = populate(*c);
  run_null_command(*c, ses);
  c->sim().run();

  (void)c->check_invariants();
  EXPECT_EQ(c->watchdog().violations(), 0u);
  for (const auto& f : c->watchdog().last_findings()) {
    ADD_FAILURE() << f.invariant << ": " << f.detail;
  }
  EXPECT_GT(c->metrics().counter_total("net", "msgs_corrupt_dropped"), 0u)
      << "a 25% corrupt rate must have hit something";
}

TEST(Integrity, ChecksumsOffLeavesNoIntegrityCells) {
  // Default-off invariant: a run that never enables checksums, corruption,
  // or the scrub creates none of the integrity metric cells, so its metrics
  // snapshot is byte-identical to a build without the feature.
  IntegrityRigParams rp;
  rp.seed = 72;
  auto c = make_cluster(rp);
  const auto ses = populate(*c);
  run_null_command(*c, ses);
  const std::string snap = c->metrics().to_json();
  EXPECT_EQ(snap.find("corrupt"), std::string::npos);
  EXPECT_EQ(snap.find("quarantined"), std::string::npos);
  EXPECT_EQ(snap.find("repaired"), std::string::npos);
}

// ------------------------------------------- scrub: quarantine and repair

class ScrubAtReplication : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScrubAtReplication, QuarantinesAndHealsCorruptEntries) {
  IntegrityRigParams rp;
  rp.seed = 80 + GetParam();
  rp.replication = GetParam();
  auto c = make_cluster(rp);
  const auto ses = populate(*c);

  // Plant corrupt shard entries: hashes no block map substantiates, inserted
  // directly into the stores of the nodes placement maps them to — the
  // footprint silent bit-rot in a shard's memory would leave.
  const dht::Placement& pl = c->placement();
  std::uint64_t planted = 0;
  for (std::uint64_t i = 0; i < 6; ++i) {
    const ContentHash bogus{0xdead0000 + i, 0xbeef0000 + i};
    c->daemon(pl.owner(bogus)).store().insert(bogus, ses[i % ses.size()]);
    ++planted;
  }

  services::IntegrityScrub scrub(*c);
  const services::ScrubReport rep = scrub.scrub_and_heal();
  EXPECT_EQ(rep.quarantined, planted);
  EXPECT_EQ(rep.repaired, rep.quarantined) << "heal must certify every quarantine";
  EXPECT_EQ(scrub.total_repaired(), scrub.total_quarantined());
  EXPECT_EQ(scrub.pending_repairs(), 0u);
  EXPECT_GT(rep.entries_checked, 0u);

  // Post-heal convergence: the audit agrees the DHT matches ground truth.
  services::DhtAudit audit(*c);
  audit.attach_scrub(&scrub);
  const services::AuditReport ar = audit.run_to_convergence();
  EXPECT_TRUE(ar.clean()) << "corrupt=" << ar.corrupt_quarantined
                          << " missing=" << ar.missing_repaired
                          << " stale=" << ar.stale_removed;
  EXPECT_EQ(scrub.total_repaired(), scrub.total_quarantined());
}

INSTANTIATE_TEST_SUITE_P(Replication, ScrubAtReplication, ::testing::Values(1u, 2u, 3u));

TEST(Integrity, CleanClusterScrubIsANoOp) {
  IntegrityRigParams rp;
  rp.seed = 90;
  rp.replication = 2;
  auto c = make_cluster(rp);
  (void)populate(*c);
  services::IntegrityScrub scrub(*c);
  const services::ScrubReport rep = scrub.scrub_and_heal();
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.quarantined, 0u);
  EXPECT_EQ(rep.repaired, 0u);
  EXPECT_GT(rep.entries_checked, 0u) << "a scrub re-hashes every served entry";
}

// --------------------------------------- audit-driven detection of rot

TEST(Integrity, AuditQuarantinesMemoryRotAndConvergesAfterRescan) {
  // Memory rots *after* the monitor hashed it: the block map still vouches
  // for the stale hash, so only the audit's re-hash pass (through the
  // attached scrub) can tell the entry is corrupt.
  IntegrityRigParams rp;
  rp.seed = 91;
  auto c = make_cluster(rp);
  const auto ses = populate(*c);

  mem::MemoryEntity& victim = c->entity(ses[0]);
  std::vector<std::byte> garbage(256, std::byte{0xCD});
  victim.write_block(0, garbage);

  services::IntegrityScrub scrub(*c);
  services::DhtAudit audit(*c);
  audit.attach_scrub(&scrub);
  const services::AuditReport first = audit.run();
  EXPECT_GE(first.corrupt_quarantined, 1u);
  EXPECT_GE(scrub.total_quarantined(), 1u);

  // Recovery: rescan (the monitor republishes current content), then heal.
  (void)c->scan_all();
  const services::ScrubReport srep = scrub.scrub_and_heal();
  EXPECT_EQ(srep.repaired, srep.quarantined + first.corrupt_quarantined);
  EXPECT_EQ(scrub.total_repaired(), scrub.total_quarantined());

  const services::AuditReport converged = audit.run_to_convergence();
  EXPECT_TRUE(converged.clean());
}

}  // namespace
}  // namespace concord
