// Dedicated tests for the workload generators: the content statistics the
// Fig. 14 experiments depend on.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hash/block_hasher.hpp"
#include "workload/workloads.hpp"

namespace concord::workload {
namespace {

constexpr std::size_t kBlk = 512;

std::map<ContentHash, int> content_histogram(const mem::MemoryEntity& e) {
  std::map<ContentHash, int> hist;
  const hash::BlockHasher hasher;
  for (BlockIndex b = 0; b < e.num_blocks(); ++b) ++hist[hasher(e.block(b))];
  return hist;
}

TEST(Workloads, NastyHasNoDuplicatePagesAnywhere) {
  // Across two entities and 500 blocks each: every page distinct.
  mem::MemoryEntity a(entity_id(0), node_id(0), EntityKind::kProcess, 500, kBlk);
  mem::MemoryEntity b(entity_id(1), node_id(0), EntityKind::kProcess, 500, kBlk);
  fill(a, defaults_for(Kind::kNasty, 4));
  fill(b, defaults_for(Kind::kNasty, 4));
  std::set<ContentHash> seen;
  const hash::BlockHasher hasher;
  for (const auto* e : {&a, &b}) {
    for (BlockIndex i = 0; i < e->num_blocks(); ++i) {
      ASSERT_TRUE(seen.insert(hasher(e->block(i))).second);
    }
  }
}

TEST(Workloads, NastyIsNotCompletelyRandom) {
  // Half of each page is a structured ramp — check the bytes directly.
  mem::MemoryEntity e(entity_id(0), node_id(0), EntityKind::kProcess, 4, kBlk);
  fill(e, defaults_for(Kind::kNasty, 1));
  const auto block = e.block(0);
  for (std::size_t i = 0; i < kBlk / 2; ++i) {
    ASSERT_EQ(block[i], static_cast<std::byte>(i & 0x0f));
  }
}

TEST(Workloads, MoldyContainsZeroSharedAndUniquePages) {
  mem::MemoryEntity e(entity_id(0), node_id(0), EntityKind::kProcess, 400, kBlk);
  auto p = defaults_for(Kind::kMoldy, 9);
  p.pool_pages = 32;
  fill(e, p);

  const auto hist = content_histogram(e);
  // The zero page exists and is the most-duplicated content.
  const std::vector<std::byte> zeros(kBlk, std::byte{0});
  const hash::BlockHasher hasher;
  const ContentHash zero_hash = hasher(std::span<const std::byte>(zeros));
  ASSERT_TRUE(hist.contains(zero_hash));
  EXPECT_GT(hist.at(zero_hash), 10);  // ~10% of 400 blocks

  // Unique pages exist too (histogram has singletons).
  int singletons = 0;
  for (const auto& [h, count] : hist) singletons += count == 1 ? 1 : 0;
  EXPECT_GT(singletons, 100);  // ~35% of 400
}

TEST(Workloads, SharedPoolPagesMatchAcrossEntitiesAndSeedsDiffer) {
  // Same workload seed: entities share pool content. Different seed: the
  // pools are disjoint.
  auto p1 = defaults_for(Kind::kMoldy, 5);
  p1.pool_pages = 16;
  auto p2 = defaults_for(Kind::kMoldy, 6);
  p2.pool_pages = 16;

  mem::MemoryEntity a(entity_id(0), node_id(0), EntityKind::kProcess, 300, kBlk);
  mem::MemoryEntity b(entity_id(1), node_id(1), EntityKind::kProcess, 300, kBlk);
  mem::MemoryEntity c(entity_id(2), node_id(2), EntityKind::kProcess, 300, kBlk);
  fill(a, p1);
  fill(b, p1);
  fill(c, p2);

  const auto ha = content_histogram(a);
  const auto hb = content_histogram(b);
  const auto hc = content_histogram(c);

  int ab_shared = 0, ac_shared = 0;
  for (const auto& [h, n] : ha) {
    ab_shared += hb.contains(h) ? 1 : 0;
    ac_shared += hc.contains(h) ? 1 : 0;
  }
  EXPECT_GT(ab_shared, 10);  // pool + zero page overlap
  EXPECT_LE(ac_shared, 1);   // only the zero page can match across seeds
}

TEST(Workloads, IntraFractionCreatesWithinEntityDuplicates) {
  Params p = defaults_for(Kind::kMoldy, 7);
  p.zero_fraction = 0.0;
  p.shared_fraction = 0.0;
  p.intra_fraction = 0.5;
  mem::MemoryEntity e(entity_id(0), node_id(0), EntityKind::kProcess, 500, kBlk);
  fill(e, p);
  const auto hist = content_histogram(e);
  EXPECT_LT(hist.size(), 400u);  // ~50% of blocks duplicate earlier ones
  EXPECT_GT(hist.size(), 200u);
}

class ExpectedDosSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExpectedDosSweep, AnalyticMatchesMeasuredAcrossSharedFractions) {
  Params p = defaults_for(Kind::kMoldy, 11);
  p.zero_fraction = 0.05;
  p.shared_fraction = GetParam();
  p.intra_fraction = 0.05;
  p.pool_pages = 64;

  constexpr std::size_t kEnts = 4, kBlocks = 512;
  std::vector<std::unique_ptr<mem::MemoryEntity>> ents;
  std::map<ContentHash, std::set<std::uint32_t>> holders;
  const hash::BlockHasher hasher;
  for (std::uint32_t i = 0; i < kEnts; ++i) {
    ents.push_back(std::make_unique<mem::MemoryEntity>(entity_id(i), node_id(0),
                                                       EntityKind::kProcess, kBlocks, kBlk));
    fill(*ents.back(), p);
    for (BlockIndex b = 0; b < kBlocks; ++b) {
      holders[hasher(ents.back()->block(b))].insert(i);
    }
  }
  std::uint64_t total = 0;
  for (const auto& [h, s] : holders) total += s.size();
  const double measured =
      static_cast<double>(total - holders.size()) / static_cast<double>(total);
  const double expected = expected_degree_of_sharing(p, kEnts, kBlocks);
  EXPECT_NEAR(measured, expected, 0.05) << "shared_fraction=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SharedFractions, ExpectedDosSweep,
                         ::testing::Values(0.1, 0.25, 0.4, 0.6, 0.8));

TEST(Workloads, MutateIsDeterministicPerSeed) {
  mem::MemoryEntity a(entity_id(0), node_id(0), EntityKind::kProcess, 64, kBlk);
  mem::MemoryEntity b(entity_id(0), node_id(0), EntityKind::kProcess, 64, kBlk);
  fill(a, defaults_for(Kind::kRandom, 2));
  fill(b, defaults_for(Kind::kRandom, 2));
  mutate(a, 0.4, 99);
  mutate(b, 0.4, 99);
  const hash::BlockHasher hasher;
  for (BlockIndex i = 0; i < 64; ++i) {
    ASSERT_EQ(hasher(a.block(i)), hasher(b.block(i)));
  }
}

TEST(Workloads, MutateSeedsDoNotCollideAcrossEntitiesAndEpochs) {
  // Regression: (seed, entity) used to combine by XOR, so (100, e4) and
  // (101, e5) produced identical "fresh" content.
  mem::MemoryEntity e4(entity_id(4), node_id(0), EntityKind::kProcess, 128, kBlk);
  mem::MemoryEntity e5(entity_id(5), node_id(0), EntityKind::kProcess, 128, kBlk);
  fill(e4, defaults_for(Kind::kRandom, 1));
  fill(e5, defaults_for(Kind::kRandom, 1));
  mutate(e4, 1.0, 100);
  mutate(e5, 1.0, 101);
  const hash::BlockHasher hasher;
  for (BlockIndex i = 0; i < 128; ++i) {
    ASSERT_NE(hasher(e4.block(i)), hasher(e5.block(i))) << "block " << i;
  }
}

TEST(Workloads, DefaultsMatchTheirKinds) {
  EXPECT_GT(defaults_for(Kind::kMoldy).shared_fraction,
            defaults_for(Kind::kHpccg).shared_fraction);
  EXPECT_EQ(defaults_for(Kind::kNasty).shared_fraction, 0.0);
  EXPECT_EQ(defaults_for(Kind::kRandom).zero_fraction, 0.0);
  EXPECT_EQ(defaults_for(Kind::kMoldy, 42).seed, 42u);
  EXPECT_EQ(expected_degree_of_sharing(defaults_for(Kind::kNasty), 8, 100), 0.0);
}

}  // namespace
}  // namespace concord::workload
