// Unit tests for src/common: Bitmap, PoolAllocator, Rng, Config, ContentHash.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/bitmap.hpp"
#include "common/config.hpp"
#include "common/pool_allocator.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace concord {
namespace {

TEST(Bitmap, SetTestReset) {
  Bitmap b(100);
  EXPECT_FALSE(b.test(5));
  b.set(5);
  EXPECT_TRUE(b.test(5));
  EXPECT_EQ(b.count(), 1u);
  b.reset(5);
  EXPECT_FALSE(b.test(5));
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitmap, GrowsOnSet) {
  Bitmap b;
  b.set(1000);
  EXPECT_TRUE(b.test(1000));
  EXPECT_GE(b.size(), 1001u);
  EXPECT_FALSE(b.test(999));
}

TEST(Bitmap, TestPastEndIsFalse) {
  const Bitmap b(10);
  EXPECT_FALSE(b.test(1000000));
}

TEST(Bitmap, UnionIntersectionDifference) {
  Bitmap a(128), b(128);
  a.set(1);
  a.set(64);
  a.set(100);
  b.set(64);
  b.set(127);

  Bitmap u = a;
  u |= b;
  EXPECT_EQ(u.count(), 4u);
  EXPECT_TRUE(u.test(1) && u.test(64) && u.test(100) && u.test(127));

  Bitmap i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(64));

  Bitmap d = a;
  d -= b;
  EXPECT_EQ(d.count(), 2u);
  EXPECT_FALSE(d.test(64));
}

TEST(Bitmap, IntersectsDifferentSizes) {
  Bitmap small(10), big(1000);
  small.set(3);
  big.set(900);
  EXPECT_FALSE(small.intersects(big));
  big.set(3);
  EXPECT_TRUE(small.intersects(big));
}

TEST(Bitmap, EqualityIgnoresTrailingZeros) {
  Bitmap a(10), b(500);
  a.set(2);
  b.set(2);
  EXPECT_EQ(a, b);
  b.set(400);
  EXPECT_FALSE(a == b);
}

TEST(Bitmap, ForEachVisitsAscending) {
  Bitmap b(300);
  const std::vector<std::size_t> want = {0, 63, 64, 65, 128, 299};
  for (const std::size_t i : want) b.set(i);
  std::vector<std::size_t> got;
  b.for_each([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(Bitmap, FindNext) {
  Bitmap b(200);
  b.set(5);
  b.set(70);
  b.set(199);
  EXPECT_EQ(b.find_next(0), 5u);
  EXPECT_EQ(b.find_next(5), 5u);
  EXPECT_EQ(b.find_next(6), 70u);
  EXPECT_EQ(b.find_next(71), 199u);
  EXPECT_EQ(b.find_next(200), 200u);  // nothing past the end
}

TEST(Bitmap, WordAccessor) {
  Bitmap b(130);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_EQ(b.word(0), 1u);
  EXPECT_EQ(b.word(1), 1u);
  EXPECT_EQ(b.word(2), std::uint64_t{1} << 1);
  EXPECT_EQ(b.word(99), 0u);  // past the end
}

TEST(PoolAllocator, ReusesFreedObjects) {
  PoolAllocatorBase pool(64, 8);
  void* a = pool.allocate();
  void* b = pool.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.live_objects(), 2u);
  pool.deallocate(a);
  EXPECT_EQ(pool.live_objects(), 1u);
  void* c = pool.allocate();
  EXPECT_EQ(c, a);  // LIFO freelist hands back the last freed
}

TEST(PoolAllocator, ReservedBytesGrowInSlabs) {
  PoolAllocatorBase pool(32, 4);
  EXPECT_EQ(pool.reserved_bytes(), 0u);
  (void)pool.allocate();
  EXPECT_EQ(pool.reserved_bytes(), 4u * 32u);
  for (int i = 0; i < 4; ++i) (void)pool.allocate();  // forces a second slab
  EXPECT_EQ(pool.reserved_bytes(), 8u * 32u);
}

TEST(PoolAllocator, TypedPoolConstructsAndDestroys) {
  struct Obj {
    int x;
    explicit Obj(int v) : x(v) {}
  };
  Pool<Obj> pool(16);
  Obj* o = pool.create(42);
  EXPECT_EQ(o->x, 42);
  EXPECT_EQ(pool.live_objects(), 1u);
  pool.destroy(o);
  EXPECT_EQ(pool.live_objects(), 0u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a(), b());
  EXPECT_NE(a(), c());  // overwhelmingly likely
}

TEST(Rng, BelowIsInRange) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(ContentHash, OrderingAndEquality) {
  const ContentHash a{1, 2}, b{1, 3}, c{1, 2};
  EXPECT_EQ(a, c);
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(ContentHash, ToStringIsHex) {
  const ContentHash h{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(h.to_string(), "0123456789abcdeffedcba9876543210");
}

TEST(ContentHash, WellMixedSpreadsBits) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(ContentHash{0, i}.well_mixed());
  }
  EXPECT_EQ(seen.size(), 1000u);  // sequential inputs must not collide
}

TEST(Config, ParsesKeyValues) {
  const auto cfg = Config::parse("a = 1\n# comment\nb= hello world \n\nc =-5");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get_int_or("a", 0), 1);
  EXPECT_EQ(cfg->get_or("b", ""), "hello world");
  EXPECT_EQ(cfg->get_int_or("c", 0), -5);
  EXPECT_FALSE(cfg->get("missing").has_value());
}

TEST(Config, RejectsMalformedLine) {
  EXPECT_FALSE(Config::parse("this has no equals sign").has_value());
  EXPECT_FALSE(Config::parse("= value without key").has_value());
}

TEST(Config, TypedAccessors) {
  Config cfg;
  cfg.set("n", "42");
  cfg.set("d", "2.5");
  cfg.set("flag", "true");
  cfg.set("junk", "xyz");
  EXPECT_EQ(cfg.get_int("n").value(), 42);
  EXPECT_DOUBLE_EQ(cfg.get_double("d").value(), 2.5);
  EXPECT_TRUE(cfg.get_bool_or("flag", false));
  EXPECT_FALSE(cfg.get_int("junk").has_value());
  EXPECT_EQ(cfg.get_int_or("junk", 7), 7);
}

TEST(Result, CarriesValueOrStatus) {
  const Result<int> good(5);
  EXPECT_TRUE(good.has_value());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(good.status(), Status::kOk);

  const Result<int> bad(Status::kNotFound);
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status(), Status::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Status, ToStringCoversAll) {
  EXPECT_EQ(to_string(Status::kOk), "ok");
  EXPECT_EQ(to_string(Status::kStale), "stale");
  EXPECT_EQ(to_string(Status::kExhausted), "exhausted");
}

}  // namespace
}  // namespace concord
