// Tests for the owner-batched DHT update pipeline: batched and unbatched
// runs must agree on DHT contents, departures must flush deterministically,
// loss must drop whole batches and still converge under audit, and the
// batching metrics must be populated.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/update_batcher.hpp"
#include "services/dht_audit.hpp"
#include "workload/workloads.hpp"

namespace concord {
namespace {

core::ClusterParams make_params(bool batched, double loss, std::uint64_t seed) {
  core::ClusterParams p;
  p.num_nodes = 4;
  p.max_entities = 16;
  p.seed = seed;
  p.fabric.loss_rate = loss;
  p.update_batching.enabled = batched;
  return p;
}

void populate(core::Cluster& cluster, std::size_t blocks) {
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    mem::MemoryEntity& e =
        cluster.create_entity(node_id(n), EntityKind::kProcess, blocks, 512);
    workload::fill(e, workload::defaults_for(workload::Kind::kRandom, n + 11));
  }
}

/// Sorted (hash, bitmap words) dump of every shard, comparable across runs.
std::vector<std::string> dht_dump(core::Cluster& cluster) {
  std::vector<std::string> out;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.daemon(node_id(n)).store().for_each_entry(
        [&](const ContentHash& h, const std::uint64_t* words, std::size_t nwords) {
          std::string line = std::to_string(n) + ":" + std::to_string(h.hi) + "," +
                             std::to_string(h.lo);
          for (std::size_t w = 0; w < nwords; ++w) {
            line += ':';  // appended separately: GCC 12's -O3 restrict
            line += std::to_string(words[w]);  // checker trips on `"" + str&&`
          }
          out.push_back(std::move(line));
        });
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Batching, PolicyMaxRecordsMatchesMtu) {
  core::BatchPolicy p;
  EXPECT_EQ(p.max_records(), (1500u - net::kWireHeaderBytes - 2u) / 21u);  // 68
  p.mtu_bytes = 0;
  EXPECT_EQ(p.max_records(), 1u);  // never below one record
  p.mtu_bytes = 1u << 20;
  EXPECT_EQ(p.max_records(), net::codec::kMaxDhtBatchRecords);  // codec bound
}

TEST(Batching, BatchedScanSendsOnlyBatchDatagramsAndMatchesUnbatched) {
  core::Cluster batched(make_params(true, 0.0, 21));
  core::Cluster unbatched(make_params(false, 0.0, 21));
  populate(batched, 64);
  populate(unbatched, 64);
  (void)batched.scan_all();
  (void)unbatched.scan_all();

  // Same DHT contents, entirely different wire traffic.
  EXPECT_EQ(dht_dump(batched), dht_dump(unbatched));
  EXPECT_EQ(batched.fabric().type_msgs(net::MsgType::kDhtInsert), 0u);
  EXPECT_EQ(batched.fabric().type_msgs(net::MsgType::kDhtRemove), 0u);
  EXPECT_GT(batched.fabric().type_msgs(net::MsgType::kDhtUpdateBatch), 0u);
  EXPECT_EQ(unbatched.fabric().type_msgs(net::MsgType::kDhtUpdateBatch), 0u);

  // The point of the PR: an order of magnitude fewer datagrams, fewer bytes.
  const std::uint64_t single_msgs =
      unbatched.fabric().type_msgs(net::MsgType::kDhtInsert) +
      unbatched.fabric().type_msgs(net::MsgType::kDhtRemove);
  const std::uint64_t batch_msgs =
      batched.fabric().type_msgs(net::MsgType::kDhtUpdateBatch);
  EXPECT_GE(single_msgs, 10 * batch_msgs);
  const std::uint64_t single_bytes =
      unbatched.fabric().type_bytes(net::MsgType::kDhtInsert) +
      unbatched.fabric().type_bytes(net::MsgType::kDhtRemove);
  const std::uint64_t batch_bytes =
      batched.fabric().type_bytes(net::MsgType::kDhtUpdateBatch);
  EXPECT_LT(batch_bytes, single_bytes * 3 / 4);

  // Every remote update was carried by a batch, and the fill histogram saw
  // one sample per shipped datagram.
  const std::uint64_t batched_records =
      batched.metrics().counter_total("core", "updates_batched");
  const std::uint64_t remote =
      batched.metrics().counter_total("core", "updates_remote");
  EXPECT_EQ(batched_records, remote);
  std::uint64_t fill_count = 0, fill_sum = 0;
  batched.metrics().for_each([&](const obs::MetricKey& key, const obs::Registry::Cell& c) {
    if (key.subsystem == "net" && key.name == "batch_fill") {
      fill_count += std::get<obs::Histogram>(c).count();
      fill_sum += std::get<obs::Histogram>(c).sum();
    }
  });
  EXPECT_EQ(fill_count, batch_msgs);
  EXPECT_EQ(fill_sum, batched_records);
}

TEST(Batching, ConvergesToUnbatchedContentsUnderSeededLoss) {
  // Property: whole batches drop (mirroring real UDP), yet after audit
  // repair both pipelines land on the same contents — ground truth. 20% loss
  // over ~24 batch datagrams guarantees (seeded) that whole batches vanish.
  core::Cluster batched(make_params(true, 0.2, 77));
  core::Cluster unbatched(make_params(false, 0.2, 77));
  populate(batched, 512);
  populate(unbatched, 512);
  (void)batched.scan_all();
  (void)unbatched.scan_all();

  // Loss must actually have bitten the batched run for this to mean much,
  // and before repair the lost batches must be visible as missing content.
  EXPECT_GT(batched.fabric().total_traffic().msgs_dropped, 0u);
  EXPECT_NE(dht_dump(batched), dht_dump(unbatched));

  services::DhtAudit(batched).run_to_convergence();
  services::DhtAudit(unbatched).run_to_convergence();
  EXPECT_EQ(dht_dump(batched), dht_dump(unbatched));
}

TEST(Batching, DepartureRemovesAreFlushedBeforeDetach) {
  core::Cluster cluster(make_params(true, 0.0, 5));
  populate(cluster, 32);
  (void)cluster.scan_all();
  const std::size_t before = cluster.total_unique_hashes();
  ASSERT_GT(before, 0u);

  // 32 removes do not fill a 68-record batch; only the explicit departure
  // flush can ship them. Without it the DHT would keep advertising entity 0.
  cluster.depart_entity(entity_id(0));
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.daemon(node_id(n)).store().for_each_entry(
        [&](const ContentHash&, const std::uint64_t* words, std::size_t nwords) {
          if (nwords > 0) {
            EXPECT_EQ(words[0] & 1u, 0u);  // entity 0 = bit 0
          }
        });
  }
  EXPECT_EQ(cluster.daemon(node_id(0)).batcher().pending_records(), 0u);
}

TEST(Batching, ThrottledScansStillBatch) {
  core::Cluster cluster(make_params(true, 0.0, 13));
  populate(cluster, 64);
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.daemon(node_id(n)).monitor().set_update_budget(10);
  }
  const mem::ScanStats s = cluster.scan_all();
  EXPECT_GT(s.throttled_blocks, 0u);
  EXPECT_EQ(cluster.fabric().type_msgs(net::MsgType::kDhtInsert), 0u);
  // Emitted remote updates still rode batch datagrams, scan-boundary flushed.
  EXPECT_EQ(cluster.metrics().counter_total("core", "updates_batched"),
            cluster.metrics().counter_total("core", "updates_remote"));
}

TEST(Batching, PendingRecordsRemapToSuccessorWhenOwnerCrashesBeforeFlush) {
  // Regression: records buffered for an owner that died between enqueue and
  // flush used to ship to the stale destination and blackhole — convergence
  // then silently depended on the next audit. flush must re-route every
  // pending record through the epoch-aware placement.
  core::Cluster cluster(make_params(true, 0.0, 9));
  populate(cluster, 32);
  (void)cluster.scan_all();

  // A synthetic update whose owner is a node we are about to crash. The
  // default 1500 B MTU holds 68 records, so one record sits in the buffer.
  const ContentHash h{0xfeedULL, 0xbeefULL};
  const NodeId old_owner = cluster.placement().owner(h);
  ASSERT_NE(old_owner, node_id(0));
  cluster.daemon(node_id(0)).batcher().add(old_owner,
                                           dht::UpdateRecord{h, entity_id(1), true});
  ASSERT_GT(cluster.daemon(node_id(0)).batcher().pending_records(), 0u);

  cluster.fault().crash(old_owner);
  (void)cluster.detect();  // epoch advances; placement drops the dead node
  const NodeId new_owner = cluster.placement().owner(h);
  ASSERT_NE(new_owner, old_owner);

  cluster.daemon(node_id(0)).flush_updates();
  cluster.sim().run();

  // The record landed at the epoch-aware successor — no audit pass needed —
  // and the remap is visible in the metrics.
  EXPECT_TRUE(cluster.daemon(new_owner).store().contains(h, entity_id(1)));
  EXPECT_GE(cluster.metrics().counter_total("core", "updates_remapped"), 1u);
  EXPECT_EQ(cluster.daemon(node_id(0)).batcher().pending_records(), 0u);
}

TEST(Batching, UnhandledMessagesAreCounted) {
  core::Cluster cluster(make_params(true, 0.0, 3));
  EXPECT_EQ(cluster.metrics().counter_total("core", "unhandled_msgs"), 0u);
  cluster.fabric().send_unreliable(net::make_message(
      node_id(0), node_id(1), net::MsgType::kControl, std::string("noop"), 4));
  cluster.sim().run();
  EXPECT_EQ(cluster.metrics().counter_total("core", "unhandled_msgs"), 1u);
}

TEST(Batching, ApplyBatchMatchesSequentialApplication) {
  dht::DhtStore batched_store(16);
  dht::DhtStore serial_store(16);
  std::vector<dht::UpdateRecord> records;
  for (std::uint64_t i = 0; i < 200; ++i) {
    // Colliding hashes (i % 17) with interleaved insert/remove: order within
    // one hash matters, and apply_batch must preserve it.
    records.push_back(dht::UpdateRecord{ContentHash{i % 17 + 1, 99},
                                        entity_id(static_cast<std::uint32_t>(i % 5)),
                                        (i % 3) != 2});
  }
  batched_store.apply_batch(records);
  for (const dht::UpdateRecord& r : records) {
    if (r.insert) {
      serial_store.insert(r.hash, r.entity);
    } else {
      serial_store.remove(r.hash, r.entity);
    }
  }
  EXPECT_EQ(batched_store.unique_hashes(), serial_store.unique_hashes());
  for (std::uint64_t h = 1; h <= 17; ++h) {
    for (std::uint32_t e = 0; e < 5; ++e) {
      EXPECT_EQ(batched_store.contains(ContentHash{h, 99}, entity_id(e)),
                serial_store.contains(ContentHash{h, 99}, entity_id(e)));
    }
  }
}

}  // namespace
}  // namespace concord
