// Direct unit tests for the shared collective-scan kernel
// (dht/collective_scan.hpp) — the per-shard reduce both query substrates
// run.
#include <gtest/gtest.h>

#include "dht/collective_scan.hpp"

namespace concord::dht {
namespace {

ContentHash h(std::uint64_t v) { return ContentHash{v, v * 3 + 1}; }

Bitmap all_of(std::size_t n) {
  Bitmap b(n);
  for (std::size_t i = 0; i < n; ++i) b.set(i);
  return b;
}

TEST(CollectiveScan, EmptyStoreYieldsZeros) {
  const DhtStore store(8);
  const std::vector<std::uint32_t> hosts = {0, 0, 1, 1};
  const ScanPartial p = collective_scan(store, all_of(4), hosts, 2, true);
  EXPECT_EQ(p.total, 0u);
  EXPECT_EQ(p.unique, 0u);
  EXPECT_TRUE(p.k_hashes.empty());
}

TEST(CollectiveScan, SplitsIntraAndInterCorrectly) {
  DhtStore store(8);
  const std::vector<std::uint32_t> hosts = {0, 0, 1, 1};

  // h(1): entities 0,1 (same node) -> 1 intra.
  store.insert(h(1), entity_id(0));
  store.insert(h(1), entity_id(1));
  // h(2): entities 0,2 (different nodes) -> 1 inter.
  store.insert(h(2), entity_id(0));
  store.insert(h(2), entity_id(2));
  // h(3): entities 0,1,2,3 -> intra 2 (one per node), inter 1.
  for (std::uint32_t i = 0; i < 4; ++i) store.insert(h(3), entity_id(i));
  // h(4): entity 3 alone -> nothing redundant.
  store.insert(h(4), entity_id(3));

  const ScanPartial p = collective_scan(store, all_of(4), hosts, 3, true);
  EXPECT_EQ(p.total, 2u + 2u + 4u + 1u);
  EXPECT_EQ(p.unique, 4u);
  EXPECT_EQ(p.intra, 1u + 0u + 2u + 0u);
  EXPECT_EQ(p.inter, 0u + 1u + 1u + 0u);
  // Redundancy identity: total - unique == intra + inter.
  EXPECT_EQ(p.total - p.unique, p.intra + p.inter);
  // k=3: only h(3) qualifies.
  EXPECT_EQ(p.k_count, 1u);
  ASSERT_EQ(p.k_hashes.size(), 1u);
  EXPECT_EQ(p.k_hashes[0], h(3));
}

TEST(CollectiveScan, ScopeFiltersEntities) {
  DhtStore store(8);
  const std::vector<std::uint32_t> hosts = {0, 1};
  store.insert(h(1), entity_id(0));
  store.insert(h(1), entity_id(1));

  Bitmap only0(2);
  only0.set(0);
  const ScanPartial p = collective_scan(store, only0, hosts, 2, false);
  EXPECT_EQ(p.total, 1u);   // entity 1 is outside the scope
  EXPECT_EQ(p.unique, 1u);
  EXPECT_EQ(p.inter, 0u);
  EXPECT_EQ(p.k_count, 0u);
}

TEST(CollectiveScan, EntitiesBeyondHostTableAreSkipped) {
  DhtStore store(8);
  const std::vector<std::uint32_t> hosts = {0};  // membership knows entity 0 only
  store.insert(h(1), entity_id(0));
  store.insert(h(1), entity_id(5));  // straggler bit with no known host

  const ScanPartial p = collective_scan(store, all_of(8), hosts, 1, false);
  EXPECT_EQ(p.total, 1u);
  EXPECT_EQ(p.unique, 1u);
}

TEST(CollectiveScan, PartialsMergeByAddition) {
  const std::vector<std::uint32_t> hosts = {0, 1};
  DhtStore a(8), b(8);
  a.insert(h(1), entity_id(0));
  a.insert(h(1), entity_id(1));
  b.insert(h(2), entity_id(0));

  ScanPartial sum = collective_scan(a, all_of(2), hosts, 2, true);
  sum += collective_scan(b, all_of(2), hosts, 2, true);
  EXPECT_EQ(sum.total, 3u);
  EXPECT_EQ(sum.unique, 2u);
  EXPECT_EQ(sum.inter, 1u);
  EXPECT_EQ(sum.k_count, 1u);
}

TEST(CollectiveScan, CollectFlagControlsHashMaterialization) {
  DhtStore store(8);
  const std::vector<std::uint32_t> hosts = {0, 1};
  store.insert(h(1), entity_id(0));
  store.insert(h(1), entity_id(1));

  const ScanPartial counted = collective_scan(store, all_of(2), hosts, 2, false);
  EXPECT_EQ(counted.k_count, 1u);
  EXPECT_TRUE(counted.k_hashes.empty());

  const ScanPartial collected = collective_scan(store, all_of(2), hosts, 2, true);
  EXPECT_EQ(collected.k_hashes.size(), 1u);
}

}  // namespace
}  // namespace concord::dht
