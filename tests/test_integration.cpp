// Integration tests: the full ConCORD lifecycle across a multi-node cluster
// — boot, scan, query, service command, checkpoint, churn, re-checkpoint,
// migration, reconstruction — plus a real-socket UDP update round trip.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "net/udp_transport.hpp"
#include "query/queries.hpp"
#include "services/collective_checkpoint.hpp"
#include "services/migration.hpp"
#include "services/raw_checkpoint.hpp"
#include "services/reconstruction.hpp"
#include "svc/command_engine.hpp"
#include "workload/workloads.hpp"

namespace concord {
namespace {

constexpr std::size_t kBlk = 512;

std::vector<std::byte> snapshot(const mem::MemoryEntity& e) {
  std::vector<std::byte> out;
  for (BlockIndex b = 0; b < e.num_blocks(); ++b) {
    out.insert(out.end(), e.block(b).begin(), e.block(b).end());
  }
  return out;
}

TEST(Integration, FullLifecycle) {
  core::ClusterParams p;
  p.num_nodes = 8;
  p.max_entities = 64;
  p.seed = 2014;
  p.fabric.loss_rate = 0.05;  // a slightly lossy site, as in real life
  core::Cluster cluster(p);

  // One MPI-rank-like process per node running a Moldy-like image.
  std::vector<EntityId> ranks;
  for (std::uint32_t n = 0; n < 8; ++n) {
    mem::MemoryEntity& e = cluster.create_entity(node_id(n), EntityKind::kProcess, 48, kBlk);
    auto wp = workload::defaults_for(workload::Kind::kMoldy, 100);
    wp.pool_pages = 96;
    workload::fill(e, wp);
    ranks.push_back(e.id());
  }

  // Boot: initial full scan populates the distributed database.
  const mem::ScanStats scan1 = cluster.scan_all();
  EXPECT_EQ(scan1.blocks_hashed, 8u * 48u);

  // Queries report considerable redundancy.
  query::QueryEngine queries(cluster);
  const query::SharingAnswer sharing = queries.sharing(node_id(0), ranks);
  EXPECT_GT(sharing.degree_of_sharing(), 0.15);
  EXPECT_GT(sharing.inter_sharing, 0u);

  // Collective checkpoint #1.
  services::CollectiveCheckpointService ckpt1(cluster);
  {
    svc::CommandEngine engine(cluster);
    svc::CommandSpec spec;
    spec.service_entities = ranks;
    spec.config.set("ckpt.dir", "epoch1");
    const svc::CommandStats stats = engine.execute(ckpt1, spec);
    ASSERT_TRUE(ok(stats.status));
    EXPECT_EQ(stats.local_blocks, 8u * 48u);
  }
  const std::vector<std::byte> rank0_at_ckpt1 = snapshot(cluster.entity(ranks[0]));

  // Application progresses: memory churns, monitors keep up.
  for (const EntityId r : ranks) workload::mutate(cluster.entity(r), 0.25, 9000 + raw(r));
  (void)cluster.scan_all();

  // Collective checkpoint #2 is correct despite churn + loss.
  services::CollectiveCheckpointService ckpt2(cluster);
  {
    svc::CommandEngine engine(cluster);
    svc::CommandSpec spec;
    spec.service_entities = ranks;
    spec.config.set("ckpt.dir", "epoch2");
    const svc::CommandStats stats = engine.execute(ckpt2, spec);
    ASSERT_TRUE(ok(stats.status));
  }
  for (const EntityId r : ranks) {
    const auto mem = services::restore_entity(cluster.fs(), ckpt2.se_path(r),
                                              ckpt2.shared_path());
    ASSERT_TRUE(mem.has_value());
    EXPECT_EQ(mem.value(), snapshot(cluster.entity(r)));
  }

  // Reconstruct rank 0's *first* checkpoint as a fresh entity — its old
  // image must come back even though live memory has moved on.
  services::ReconstructionStats rstats;
  services::VmReconstruction recon(cluster);
  const auto rebuilt =
      recon.reconstruct(ckpt1.se_path(ranks[0]), ckpt1.shared_path(), node_id(7), rstats);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(snapshot(cluster.entity(rebuilt.value())), rank0_at_ckpt1);

  // Finally migrate rank 1 to node 7, leveraging whatever content already
  // lives there (the reconstructed image shares its pool pages).
  (void)cluster.scan_all();
  const std::vector<std::byte> rank1_mem = snapshot(cluster.entity(ranks[1]));
  services::CollectiveMigration mig(cluster);
  const services::MigrationPlanItem item{ranks[1], node_id(7)};
  const services::MigrationStats mstats = mig.migrate(std::span(&item, 1));
  ASSERT_TRUE(ok(mstats.status));
  EXPECT_EQ(snapshot(cluster.entity(mstats.new_ids[0])), rank1_mem);
  EXPECT_GT(mstats.blocks_reconstructed, 0u);  // shared pool pages found locally
  EXPECT_LT(mstats.wire_bytes, rank1_mem.size());
}

TEST(Integration, ThrottledMonitorsEventuallyConverge) {
  core::ClusterParams p;
  p.num_nodes = 4;
  p.max_entities = 16;
  core::Cluster cluster(p);
  std::vector<EntityId> ids;
  for (std::uint32_t n = 0; n < 4; ++n) {
    mem::MemoryEntity& e = cluster.create_entity(node_id(n), EntityKind::kProcess, 64, kBlk);
    workload::fill(e, workload::defaults_for(workload::Kind::kRandom, n + 50));
    cluster.daemon(node_id(n)).monitor().set_update_budget(20);
    ids.push_back(e.id());
  }

  // 64 blocks at 20 updates/epoch needs 4 epochs to converge.
  std::size_t epochs = 0;
  while (cluster.total_unique_hashes() < 4 * 64 && epochs < 10) {
    (void)cluster.scan_all();
    ++epochs;
  }
  EXPECT_EQ(cluster.total_unique_hashes(), 4u * 64u);
  EXPECT_GE(epochs, 3u);
}

TEST(Integration, DhtUpdateOverRealUdpSockets) {
  // Serialize a ConCORD DHT update, push it through a real loopback UDP
  // socket, decode it on the other side, and apply it to a DhtStore — the
  // deployed system's exact data path in miniature.
  net::UdpEndpoint monitor_side, daemon_side;
  ASSERT_TRUE(ok(monitor_side.bind()));
  ASSERT_TRUE(ok(daemon_side.bind()));

  const ContentHash h{0x1122334455667788ULL, 0x99aabbccddeeff00ULL};
  const EntityId entity = entity_id(5);

  // Wire format: hash.hi, hash.lo, entity, op — little-endian, 21 bytes.
  std::vector<std::byte> wire(21);
  std::memcpy(wire.data(), &h.hi, 8);
  std::memcpy(wire.data() + 8, &h.lo, 8);
  const std::uint32_t eid = raw(entity);
  std::memcpy(wire.data() + 16, &eid, 4);
  wire[20] = std::byte{1};  // insert
  ASSERT_TRUE(ok(monitor_side.send_to(daemon_side.port(), wire)));

  const auto got = daemon_side.recv(1000);
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got.value().size(), 21u);

  ContentHash decoded;
  std::uint32_t decoded_eid = 0;
  std::memcpy(&decoded.hi, got.value().data(), 8);
  std::memcpy(&decoded.lo, got.value().data() + 8, 8);
  std::memcpy(&decoded_eid, got.value().data() + 16, 4);
  const bool insert = got.value()[20] == std::byte{1};

  dht::DhtStore store(16, dht::AllocMode::kPool);
  ASSERT_TRUE(insert);
  store.insert(decoded, entity_id(decoded_eid));
  EXPECT_TRUE(store.contains(h, entity));
}

}  // namespace
}  // namespace concord
