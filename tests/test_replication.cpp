// Tests for the ReplicationGuard fault-tolerance service: content ends up
// with >= k replicas on distinct nodes, existing redundancy is leveraged
// for free, and the placed copies survive a source-node "failure".
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "services/replication_guard.hpp"
#include "workload/workloads.hpp"

namespace concord::services {
namespace {

constexpr std::size_t kBlk = 256;

std::unique_ptr<core::Cluster> make_cluster(std::uint32_t nodes, std::uint64_t seed = 21) {
  core::ClusterParams p;
  p.num_nodes = nodes;
  p.max_entities = 32;
  p.seed = seed;
  return std::make_unique<core::Cluster>(p);
}

/// Distinct nodes verifiably holding `h` (by ground truth, not the DHT).
std::size_t nodes_holding(core::Cluster& c, const ContentHash& h) {
  std::set<std::uint32_t> nodes;
  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    if (c.daemon(node_id(n)).block_map().find(h) != nullptr) nodes.insert(n);
  }
  return nodes.size();
}

TEST(ReplicationGuard, RaisesEveryHashToK) {
  auto c = make_cluster(4);
  mem::MemoryEntity& e = c->create_entity(node_id(0), EntityKind::kProcess, 24, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 3));
  (void)c->scan_all();

  ReplicationGuard guard(*c);
  const std::vector<EntityId> scope{e.id()};
  const ReplicationReport r = guard.ensure(scope, 3);
  EXPECT_EQ(r.hashes_checked, 24u);
  EXPECT_EQ(r.under_replicated, 24u);  // unique content: everything was at 1
  EXPECT_EQ(r.replicas_created, 24u * 2u);

  const hash::BlockHasher hasher;
  for (BlockIndex b = 0; b < e.num_blocks(); ++b) {
    EXPECT_GE(nodes_holding(*c, hasher(e.block(b))), 3u) << "block " << b;
  }
}

TEST(ReplicationGuard, LeveragesNaturalRedundancyForFree) {
  auto c = make_cluster(3);
  // Identical twins on two nodes: k=2 is already satisfied everywhere.
  mem::MemoryEntity& a = c->create_entity(node_id(0), EntityKind::kProcess, 16, kBlk);
  mem::MemoryEntity& b = c->create_entity(node_id(1), EntityKind::kProcess, 16, kBlk);
  workload::fill(a, workload::defaults_for(workload::Kind::kRandom, 5));
  for (BlockIndex i = 0; i < 16; ++i) b.write_block(i, a.block(i));
  (void)c->scan_all();

  ReplicationGuard guard(*c);
  const std::vector<EntityId> scope{a.id(), b.id()};
  const ReplicationReport r = guard.ensure(scope, 2);
  EXPECT_EQ(r.replicas_created, 0u);
  EXPECT_EQ(r.replicas_leveraged, 16u);
  EXPECT_EQ(r.wire_bytes, 0u);
}

TEST(ReplicationGuard, SecondRunIsFree) {
  auto c = make_cluster(4);
  mem::MemoryEntity& e = c->create_entity(node_id(0), EntityKind::kProcess, 16, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 7));
  (void)c->scan_all();

  ReplicationGuard guard(*c);
  const std::vector<EntityId> scope{e.id()};
  (void)guard.ensure(scope, 2);
  const ReplicationReport second = guard.ensure(scope, 2);
  EXPECT_EQ(second.replicas_created, 0u);  // placed copies now count
  EXPECT_EQ(second.under_replicated, 0u);
}

TEST(ReplicationGuard, CopiesSurviveSourceDeparture) {
  // The FT scenario: after ensure(2), losing the original still leaves a
  // live copy that reconstruction-style consumers can find via the DHT.
  auto c = make_cluster(3);
  mem::MemoryEntity& e = c->create_entity(node_id(0), EntityKind::kProcess, 8, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 9));
  (void)c->scan_all();
  const hash::BlockHasher hasher;
  std::vector<ContentHash> hashes;
  for (BlockIndex b = 0; b < 8; ++b) hashes.push_back(hasher(e.block(b)));

  ReplicationGuard guard(*c);
  const std::vector<EntityId> scope{e.id()};
  ASSERT_EQ(guard.ensure(scope, 2).replicas_created, 8u);

  c->depart_entity(e.id());
  for (const ContentHash& h : hashes) {
    EXPECT_GE(nodes_holding(*c, h), 1u) << h.to_string();
  }
}

TEST(ReplicationGuard, ReportsExhaustionWhenReplicaStoreFills) {
  auto c = make_cluster(2);
  mem::MemoryEntity& e = c->create_entity(node_id(0), EntityKind::kProcess, 16, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 11));
  (void)c->scan_all();

  ReplicationGuard guard(*c, /*replica_capacity_blocks=*/4);  // too small for 16
  const std::vector<EntityId> scope{e.id()};
  const ReplicationReport r = guard.ensure(scope, 2);
  EXPECT_EQ(r.status, Status::kExhausted);
  EXPECT_EQ(r.replicas_created, 4u);  // filled what fit
}

TEST(ReplicationGuard, KOneIsAlwaysSatisfied) {
  auto c = make_cluster(2);
  mem::MemoryEntity& e = c->create_entity(node_id(0), EntityKind::kProcess, 8, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 13));
  (void)c->scan_all();
  ReplicationGuard guard(*c);
  const std::vector<EntityId> scope{e.id()};
  const ReplicationReport r = guard.ensure(scope, 1);
  EXPECT_EQ(r.replicas_created, 0u);
  EXPECT_EQ(r.replicas_leveraged, 8u);
}

}  // namespace
}  // namespace concord::services
