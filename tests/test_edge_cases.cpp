// Edge-case and failure-injection tests across the stack: degenerate
// geometries, corrupted checkpoint files, alternative hashers and detect
// modes end-to-end, and best-effort query semantics under loss.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "query/queries.hpp"
#include "services/checkpoint_format.hpp"
#include "services/collective_checkpoint.hpp"
#include "svc/command_engine.hpp"
#include "workload/workloads.hpp"

namespace concord {
namespace {

constexpr std::size_t kBlk = 256;

std::unique_ptr<core::Cluster> make_cluster(core::ClusterParams p) {
  return std::make_unique<core::Cluster>(p);
}

TEST(EdgeCases, SingleNodeClusterWorksEndToEnd) {
  core::ClusterParams p;
  p.num_nodes = 1;
  p.max_entities = 4;
  auto c = make_cluster(p);
  mem::MemoryEntity& e = c->create_entity(node_id(0), EntityKind::kProcess, 16, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kMoldy, 1));
  (void)c->scan_all();
  EXPECT_GT(c->total_unique_hashes(), 0u);

  query::QueryEngine q(*c);
  const std::vector<EntityId> set{e.id()};
  EXPECT_GT(q.sharing(node_id(0), set).unique_hashes, 0u);

  services::CollectiveCheckpointService ckpt(*c);
  svc::CommandEngine engine(*c);
  svc::CommandSpec spec;
  spec.service_entities = set;
  const svc::CommandStats stats = engine.execute(ckpt, spec);
  EXPECT_TRUE(ok(stats.status));
  const auto mem = services::restore_entity(c->fs(), ckpt.se_path(e.id()), ckpt.shared_path());
  ASSERT_TRUE(mem.has_value());
}

TEST(EdgeCases, ZeroBlockEntityIsHarmless) {
  core::ClusterParams p;
  p.num_nodes = 2;
  p.max_entities = 4;
  auto c = make_cluster(p);
  mem::MemoryEntity& empty = c->create_entity(node_id(0), EntityKind::kProcess, 0, kBlk);
  const mem::ScanStats st = c->scan_all();
  EXPECT_EQ(st.blocks_hashed, 0u);

  services::CollectiveCheckpointService ckpt(*c);
  svc::CommandEngine engine(*c);
  svc::CommandSpec spec;
  spec.service_entities = {empty.id()};
  const svc::CommandStats stats = engine.execute(ckpt, spec);
  EXPECT_TRUE(ok(stats.status));
  EXPECT_EQ(stats.local_blocks, 0u);
  const auto mem = services::restore_entity(c->fs(), ckpt.se_path(empty.id()),
                                            ckpt.shared_path());
  ASSERT_TRUE(mem.has_value());
  EXPECT_TRUE(mem.value().empty());
}

TEST(EdgeCases, NonDefaultBlockSizeRoundTrips) {
  for (const std::size_t bs : {std::size_t{64}, std::size_t{1024}, std::size_t{4096}}) {
    core::ClusterParams p;
    p.num_nodes = 2;
    p.max_entities = 4;
    auto c = make_cluster(p);
    mem::MemoryEntity& e = c->create_entity(node_id(0), EntityKind::kProcess, 8, bs);
    workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 3));
    (void)c->scan_all();

    services::CollectiveCheckpointService ckpt(*c);
    svc::CommandEngine engine(*c);
    svc::CommandSpec spec;
    spec.service_entities = {e.id()};
    ASSERT_TRUE(ok(engine.execute(ckpt, spec).status));
    const auto mem =
        services::restore_entity(c->fs(), ckpt.se_path(e.id()), ckpt.shared_path());
    ASSERT_TRUE(mem.has_value()) << "block size " << bs;
    for (BlockIndex b = 0; b < 8; ++b) {
      ASSERT_EQ(std::memcmp(mem.value().data() + b * bs, e.block(b).data(), bs), 0);
    }
  }
}

class HasherSweep : public ::testing::TestWithParam<hash::Algorithm> {};

TEST_P(HasherSweep, CheckpointCorrectWithEitherHasher) {
  core::ClusterParams p;
  p.num_nodes = 4;
  p.max_entities = 8;
  p.hash_algorithm = GetParam();
  auto c = make_cluster(p);
  std::vector<EntityId> ses;
  for (std::uint32_t n = 0; n < 4; ++n) {
    mem::MemoryEntity& e = c->create_entity(node_id(n), EntityKind::kProcess, 16, kBlk);
    workload::fill(e, workload::defaults_for(workload::Kind::kMoldy, n + 1));
    ses.push_back(e.id());
  }
  (void)c->scan_all();

  services::CollectiveCheckpointService ckpt(*c);
  svc::CommandEngine engine(*c);
  svc::CommandSpec spec;
  spec.service_entities = ses;
  ASSERT_TRUE(ok(engine.execute(ckpt, spec).status));
  for (const EntityId id : ses) {
    const auto mem =
        services::restore_entity(c->fs(), ckpt.se_path(id), ckpt.shared_path());
    ASSERT_TRUE(mem.has_value());
    const mem::MemoryEntity& e = c->entity(id);
    for (BlockIndex b = 0; b < e.num_blocks(); ++b) {
      ASSERT_EQ(std::memcmp(mem.value().data() + b * kBlk, e.block(b).data(), kBlk), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, HasherSweep,
                         ::testing::Values(hash::Algorithm::kMd5,
                                           hash::Algorithm::kSuperFast));

class DetectModeSweep : public ::testing::TestWithParam<mem::DetectMode> {};

TEST_P(DetectModeSweep, IncrementalTrackingConvergesToSameDht) {
  core::ClusterParams p;
  p.num_nodes = 2;
  p.max_entities = 4;
  p.detect_mode = GetParam();
  auto c = make_cluster(p);
  mem::MemoryEntity& e = c->create_entity(node_id(0), EntityKind::kProcess, 32, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 4));
  (void)c->scan_all();
  const std::size_t after_first = c->total_unique_hashes();
  EXPECT_EQ(after_first, 32u);

  // Mutate half, rescan twice (second is a no-op), verify the DHT matches a
  // fresh ground-truth hash of memory.
  workload::mutate(e, 0.5, 99);
  (void)c->scan_all();
  const mem::ScanStats idle = c->scan_all();
  EXPECT_EQ(idle.inserts_emitted, 0u);

  const hash::BlockHasher hasher(p.hash_algorithm);
  for (BlockIndex b = 0; b < e.num_blocks(); ++b) {
    const ContentHash h = hasher(e.block(b));
    const NodeId owner = c->placement().owner(h);
    EXPECT_TRUE(c->daemon(owner).store().contains(h, e.id())) << "block " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, DetectModeSweep,
                         ::testing::Values(mem::DetectMode::kFullScan,
                                           mem::DetectMode::kDirtyBit,
                                           mem::DetectMode::kCopyOnWrite));

TEST(FailureInjection, CorruptedCheckpointRecordIsRejected) {
  core::ClusterParams p;
  p.num_nodes = 2;
  p.max_entities = 4;
  auto c = make_cluster(p);
  mem::MemoryEntity& e = c->create_entity(node_id(0), EntityKind::kProcess, 4, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 5));
  (void)c->scan_all();

  services::CollectiveCheckpointService ckpt(*c);
  svc::CommandEngine engine(*c);
  svc::CommandSpec spec;
  spec.service_entities = {e.id()};
  ASSERT_TRUE(ok(engine.execute(ckpt, spec).status));

  // Corrupt the record kind byte of the first record.
  const std::string se_path = ckpt.se_path(e.id());
  const auto data = c->fs().read_all(se_path);
  ASSERT_TRUE(data.has_value());
  auto bad = data.value();
  bad[services::kHeaderBytes] = std::byte{0xff};
  (void)c->fs().remove(se_path);
  c->fs().append(se_path, bad);

  const auto mem = services::restore_entity(c->fs(), se_path, ckpt.shared_path());
  EXPECT_FALSE(mem.has_value());
  EXPECT_EQ(mem.status(), Status::kInvalidArgument);
}

TEST(FailureInjection, TruncatedCheckpointIsRejected) {
  core::ClusterParams p;
  p.num_nodes = 2;
  p.max_entities = 4;
  auto c = make_cluster(p);
  mem::MemoryEntity& e = c->create_entity(node_id(0), EntityKind::kProcess, 4, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 6));
  (void)c->scan_all();

  services::CollectiveCheckpointService ckpt(*c);
  svc::CommandEngine engine(*c);
  svc::CommandSpec spec;
  spec.service_entities = {e.id()};
  ASSERT_TRUE(ok(engine.execute(ckpt, spec).status));

  const std::string se_path = ckpt.se_path(e.id());
  const auto data = c->fs().read_all(se_path);
  ASSERT_TRUE(data.has_value());
  auto truncated = data.value();
  truncated.resize(truncated.size() / 2);
  (void)c->fs().remove(se_path);
  c->fs().append(se_path, truncated);

  EXPECT_FALSE(services::restore_entity(c->fs(), se_path, ckpt.shared_path()).has_value());
}

TEST(FailureInjection, QueriesAreBestEffortUnderLoss) {
  // With lossy updates the DHT undercounts — queries must never overcount.
  core::ClusterParams p;
  p.num_nodes = 4;
  p.max_entities = 8;
  p.fabric.loss_rate = 0.3;
  p.seed = 77;
  auto c = make_cluster(p);
  std::vector<EntityId> ids;
  for (std::uint32_t n = 0; n < 4; ++n) {
    mem::MemoryEntity& e = c->create_entity(node_id(n), EntityKind::kProcess, 32, kBlk);
    auto wp = workload::defaults_for(workload::Kind::kMoldy, 2);
    wp.pool_pages = 16;
    workload::fill(e, wp);
    ids.push_back(e.id());
  }
  (void)c->scan_all();

  // Oracle from ground truth.
  const hash::BlockHasher hasher;
  std::uint64_t truth_total = 0;
  std::map<ContentHash, std::set<std::uint32_t>> holders;
  for (const EntityId id : ids) {
    const mem::MemoryEntity& e = c->entity(id);
    for (BlockIndex b = 0; b < e.num_blocks(); ++b) {
      holders[hasher(e.block(b))].insert(raw(id));
    }
  }
  for (const auto& [h, s] : holders) truth_total += s.size();

  query::QueryEngine q(*c);
  const query::SharingAnswer ans = q.sharing(node_id(0), ids);
  EXPECT_LE(ans.total_copies, truth_total);
  EXPECT_LE(ans.unique_hashes, holders.size());
  EXPECT_GT(ans.unique_hashes, 0u);

  for (const auto& [h, s] : holders) {
    EXPECT_LE(q.num_copies(node_id(1), h).num_copies, s.size());
  }
}

TEST(FailureInjection, CommandSucceedsWhenDhtIsCompletelyEmpty) {
  // Monitors never ran: the collective phase has nothing to drive and the
  // local phase does all the work.
  core::ClusterParams p;
  p.num_nodes = 2;
  p.max_entities = 4;
  auto c = make_cluster(p);
  mem::MemoryEntity& e = c->create_entity(node_id(0), EntityKind::kProcess, 8, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 8));
  // No scan_all() on purpose.

  services::CollectiveCheckpointService ckpt(*c);
  svc::CommandEngine engine(*c);
  svc::CommandSpec spec;
  spec.service_entities = {e.id()};
  const svc::CommandStats stats = engine.execute(ckpt, spec);
  ASSERT_TRUE(ok(stats.status));
  EXPECT_EQ(stats.distinct_hashes, 0u);
  EXPECT_EQ(stats.local_uncovered, 8u);

  const auto mem =
      services::restore_entity(c->fs(), ckpt.se_path(e.id()), ckpt.shared_path());
  ASSERT_TRUE(mem.has_value());
  for (BlockIndex b = 0; b < 8; ++b) {
    ASSERT_EQ(std::memcmp(mem.value().data() + b * kBlk, e.block(b).data(), kBlk), 0);
  }
}

TEST(EdgeCases, LoopbackMessagesBypassTheNic) {
  sim::Simulation simu;
  net::Fabric fabric(simu, net::FabricParams{});
  int received = 0;
  fabric.register_node(node_id(0), [&](const net::Message&) { ++received; });
  fabric.send_reliable(
      net::make_message(node_id(0), node_id(0), net::MsgType::kControl, 1, 8));
  fabric.send_unreliable(
      net::make_message(node_id(0), node_id(0), net::MsgType::kControl, 2, 8));
  simu.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(fabric.traffic(node_id(0)).bytes_sent, 0u);  // never touched the NIC
  EXPECT_LE(simu.now(), 2 * net::kLoopbackLatency);
}

}  // namespace
}  // namespace concord
