// Tests for the zero-hop DHT store: model-based property checks against a
// std::map oracle, both allocation modes, and placement behaviour.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "dht/chained_store.hpp"
#include "dht/dht_store.hpp"
#include "dht/placement.hpp"

namespace concord::dht {
namespace {

ContentHash h(std::uint64_t v) { return ContentHash{v * 0x9e3779b97f4a7c15ULL, v}; }

class DhtStoreModes : public ::testing::TestWithParam<AllocMode> {};

TEST_P(DhtStoreModes, InsertLookupRemove) {
  DhtStore store(64, GetParam());
  EXPECT_TRUE(store.insert(h(1), entity_id(3)));
  EXPECT_FALSE(store.insert(h(1), entity_id(5)));  // entry exists, new bit
  EXPECT_EQ(store.num_entities(h(1)), 2u);
  EXPECT_TRUE(store.contains(h(1), entity_id(3)));
  EXPECT_FALSE(store.contains(h(1), entity_id(4)));
  EXPECT_EQ(store.entities(h(1)),
            (std::vector<EntityId>{entity_id(3), entity_id(5)}));

  EXPECT_TRUE(store.remove(h(1), entity_id(3)));
  EXPECT_EQ(store.num_entities(h(1)), 1u);
  EXPECT_TRUE(store.remove(h(1), entity_id(5)));
  EXPECT_EQ(store.unique_hashes(), 0u);  // entry erased when set drains
  EXPECT_FALSE(store.remove(h(1), entity_id(5)));
}

TEST_P(DhtStoreModes, IdempotentInsert) {
  DhtStore store(64, GetParam());
  store.insert(h(2), entity_id(1));
  store.insert(h(2), entity_id(1));
  EXPECT_EQ(store.num_entities(h(2)), 1u);
  EXPECT_EQ(store.unique_hashes(), 1u);
}

TEST_P(DhtStoreModes, RemoveUnknownHashFails) {
  DhtStore store(64, GetParam());
  EXPECT_FALSE(store.remove(h(99), entity_id(0)));
}

TEST_P(DhtStoreModes, GrowsPastInitialBuckets) {
  DhtStore store(32, GetParam());
  for (std::uint64_t i = 0; i < 5000; ++i) {
    store.insert(h(i), entity_id(static_cast<std::uint32_t>(i % 32)));
  }
  EXPECT_EQ(store.unique_hashes(), 5000u);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(store.contains(h(i), entity_id(static_cast<std::uint32_t>(i % 32)))) << i;
  }
}

TEST_P(DhtStoreModes, ForEachEntryVisitsAll) {
  DhtStore store(8, GetParam());
  for (std::uint64_t i = 0; i < 100; ++i) store.insert(h(i), entity_id(0));
  std::set<std::uint64_t> seen;
  store.for_each_entry([&](const ContentHash& hash, const std::uint64_t* words, std::size_t n) {
    seen.insert(hash.lo);
    ASSERT_GE(n, 1u);
    EXPECT_EQ(words[0], 1u);
  });
  EXPECT_EQ(seen.size(), 100u);
}

TEST_P(DhtStoreModes, ModelBasedRandomOps) {
  // Property: a long random insert/remove sequence matches a map<hash,set>.
  DhtStore store(128, GetParam());
  std::map<ContentHash, std::set<std::uint32_t>> model;
  Rng rng(2024);

  for (int step = 0; step < 20000; ++step) {
    const ContentHash hash = h(rng.below(300));
    const auto ent = static_cast<std::uint32_t>(rng.below(128));
    if (rng.chance(0.6)) {
      store.insert(hash, entity_id(ent));
      model[hash].insert(ent);
    } else {
      const bool removed = store.remove(hash, entity_id(ent));
      const auto it = model.find(hash);
      const bool model_removed = it != model.end() && it->second.erase(ent) > 0;
      ASSERT_EQ(removed, model_removed) << "step " << step;
      if (it != model.end() && it->second.empty()) model.erase(it);
    }
  }

  EXPECT_EQ(store.unique_hashes(), model.size());
  for (const auto& [hash, ents] : model) {
    ASSERT_EQ(store.num_entities(hash), ents.size());
    const auto got = store.entities(hash);
    ASSERT_EQ(got.size(), ents.size());
    for (const EntityId e : got) ASSERT_TRUE(ents.contains(raw(e)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllocModes, DhtStoreModes,
                         ::testing::Values(AllocMode::kMalloc, AllocMode::kPool));

TEST(DhtStore, PoolUsesLessMemoryThanMalloc) {
  // The Fig. 6 claim, as a hard invariant at steady state: for identically
  // loaded stores the pool's reserved bytes (minus slab overshoot) beat
  // malloc's real usable-size accounting. One or two copies per hash never
  // allocates in the compact layout, so the load must spill (3+ entities
  // per hash) for the allocator choice to matter at all.
  constexpr std::uint32_t kEntities = 256;
  constexpr std::uint64_t kHashes = 50000;
  DhtStore pool(kEntities, AllocMode::kPool);
  DhtStore mall(kEntities, AllocMode::kMalloc);
  for (std::uint64_t i = 0; i < kHashes; ++i) {
    for (std::uint32_t e = 0; e < 3; ++e) {
      const auto ent = static_cast<std::uint32_t>((i + e * 31) % kEntities);
      pool.insert(h(i), entity_id(ent));
      mall.insert(h(i), entity_id(ent));
    }
  }
  EXPECT_LT(pool.memory_bytes(), mall.memory_bytes());
}

TEST(DhtStore, MemoryAccountingShrinksOnRemove) {
  DhtStore store(8, AllocMode::kMalloc);
  for (std::uint64_t i = 0; i < 1000; ++i) store.insert(h(i), entity_id(0));
  const std::size_t full = store.memory_bytes();
  for (std::uint64_t i = 0; i < 1000; ++i) store.remove(h(i), entity_id(0));
  EXPECT_LT(store.memory_bytes(), full);
}

TEST(DhtStore, TombstoneReuseKeepsCapacityStable) {
  // Churn at a fixed live size must converge: the probe loop reuses the
  // first tombstone on the walk, so remove/insert cycles neither grow the
  // table nor accumulate unbounded deletion markers.
  DhtStore store(8, AllocMode::kPool);
  for (std::uint64_t i = 0; i < 40; ++i) store.insert(h(i), entity_id(0));
  const std::size_t cap = store.capacity();
  for (std::uint64_t round = 0; round < 50; ++round) {
    for (std::uint64_t i = 0; i < 40; ++i) store.remove(h(i), entity_id(0));
    for (std::uint64_t i = 0; i < 40; ++i) store.insert(h(i), entity_id(0));
  }
  EXPECT_EQ(store.capacity(), cap);
  EXPECT_LE(store.tombstones(), store.capacity() - store.unique_hashes());
  EXPECT_EQ(store.unique_hashes(), 40u);
  for (std::uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(store.contains(h(i), entity_id(0))) << i;
  }
}

TEST(DhtStore, RehashGrowsAndShrinks) {
  DhtStore store(8, AllocMode::kPool);
  const std::size_t initial = store.capacity();
  for (std::uint64_t i = 0; i < 4000; ++i) store.insert(h(i), entity_id(0));
  const std::size_t grown = store.capacity();
  EXPECT_GT(grown, initial);
  EXPECT_GE(grown, 4000u);  // load factor never exceeds 7/8
  for (std::uint64_t i = 0; i < 3990; ++i) store.remove(h(i), entity_id(0));
  EXPECT_LT(store.capacity(), grown);  // sparse table gives memory back
  EXPECT_EQ(store.unique_hashes(), 10u);
  for (std::uint64_t i = 3990; i < 4000; ++i) {
    ASSERT_TRUE(store.contains(h(i), entity_id(0))) << i;
  }
}

TEST(DhtStore, InlinePromotionAndDemotion) {
  // 1 and 2 ids live inline in the 8-byte set slot; the 3rd spills to a
  // bitmap; draining back below 3 keeps answers exact either way.
  DhtStore store(256, AllocMode::kMalloc);
  store.insert(h(7), entity_id(9));
  EXPECT_EQ(store.memory_bytes(),
            store.capacity() * (sizeof(ContentHash) + 1 + sizeof(std::uint64_t)));
  store.insert(h(7), entity_id(3));
  EXPECT_EQ(store.entities(h(7)), (std::vector<EntityId>{entity_id(3), entity_id(9)}));
  const std::size_t inline_bytes = store.memory_bytes();
  store.insert(h(7), entity_id(200));  // spill
  EXPECT_GT(store.memory_bytes(), inline_bytes);
  EXPECT_EQ(store.entities(h(7)),
            (std::vector<EntityId>{entity_id(3), entity_id(9), entity_id(200)}));
  EXPECT_TRUE(store.remove(h(7), entity_id(9)));
  EXPECT_EQ(store.entities(h(7)), (std::vector<EntityId>{entity_id(3), entity_id(200)}));
  EXPECT_TRUE(store.remove(h(7), entity_id(200)));
  EXPECT_TRUE(store.remove(h(7), entity_id(3)));
  EXPECT_EQ(store.unique_hashes(), 0u);
  EXPECT_EQ(store.memory_bytes(),
            store.capacity() * (sizeof(ContentHash) + 1 + sizeof(std::uint64_t)));
}

TEST(DhtStore, ApplyBatchMatchesModel) {
  // Property: randomized batches (mixed inserts/removes, duplicate hashes
  // inside one batch) leave the store exactly where per-record application
  // of the same sequence leaves a map<hash,set> oracle.
  DhtStore store(128, AllocMode::kPool);
  std::map<ContentHash, std::set<std::uint32_t>> model;
  Rng rng(777);
  for (int batch = 0; batch < 400; ++batch) {
    std::vector<UpdateRecord> records;
    const std::size_t n = 1 + rng.below(60);
    for (std::size_t i = 0; i < n; ++i) {
      const ContentHash hash = h(rng.below(150));
      const auto ent = static_cast<std::uint32_t>(rng.below(128));
      const bool insert = rng.chance(0.7);
      records.push_back(UpdateRecord{hash, entity_id(ent), insert});
      if (insert) {
        model[hash].insert(ent);
      } else {
        const auto it = model.find(hash);
        if (it != model.end()) {
          it->second.erase(ent);
          if (it->second.empty()) model.erase(it);
        }
      }
    }
    store.apply_batch(records);
  }
  ASSERT_EQ(store.unique_hashes(), model.size());
  for (const auto& [hash, ents] : model) {
    const auto got = store.entities(hash);
    ASSERT_EQ(got.size(), ents.size());
    for (const EntityId e : got) ASSERT_TRUE(ents.contains(raw(e)));
  }
}

TEST(DhtStore, CompactBeatsChainedBytesPerEntry) {
  // The PR's headline memory claim at test scale: same load, both pool
  // mode, the open-addressing SoA layout holds >= 30% fewer bytes per entry
  // than the pointer-chained baseline.
  constexpr std::uint32_t kEntities = 256;
  constexpr std::uint64_t kHashes = 200000;
  DhtStore compact(kEntities, AllocMode::kPool);
  ChainedDhtStore chained(kEntities, AllocMode::kPool);
  for (std::uint64_t i = 0; i < kHashes; ++i) {
    const auto ent = entity_id(static_cast<std::uint32_t>(i % kEntities));
    compact.insert(h(i), ent);
    chained.insert(h(i), ent);
  }
  const double compact_bpe = static_cast<double>(compact.memory_bytes()) / kHashes;
  const double chained_bpe = static_cast<double>(chained.memory_bytes()) / kHashes;
  EXPECT_LE(compact_bpe, chained_bpe * 0.7)
      << "compact " << compact_bpe << " B/entry vs chained " << chained_bpe;
}

TEST(DhtStore, MoveAssignKeepsDestinationRegistryBinding) {
  // Regression: the shard a cluster registry knows as "node 7" must keep
  // accounting there after being replaced by move-assignment (shard
  // recovery rebuilds stores this way). The source's accumulated counts
  // fold into the destination's cells, and post-move inserts land there.
  obs::Registry registry;
  DhtStore bound(64, AllocMode::kPool);
  bound.bind_metrics(registry, 7);
  bound.insert(h(1), entity_id(0));
  bound.insert(h(2), entity_id(0));

  DhtStore unbound(64, AllocMode::kPool);
  unbound.insert(h(10), entity_id(1));
  unbound.insert(h(11), entity_id(1));
  unbound.insert(h(12), entity_id(1));

  bound = std::move(unbound);
  // 2 pre-move + 3 folded from the source.
  EXPECT_EQ(registry.counter("dht", "inserts", 7).value(), 5u);
  EXPECT_EQ(registry.gauge("dht", "unique_hashes", 7).value(), 3);
  bound.insert(h(13), entity_id(1));
  EXPECT_EQ(registry.counter("dht", "inserts", 7).value(), 6u);
  EXPECT_EQ(registry.gauge("dht", "unique_hashes", 7).value(), 4);
  EXPECT_TRUE(bound.contains(h(10), entity_id(1)));
  EXPECT_FALSE(bound.contains(h(1), entity_id(0)));
}

TEST(DhtStore, ClearReleasesEverything) {
  DhtStore store(8, AllocMode::kPool);
  for (std::uint64_t i = 0; i < 100; ++i) store.insert(h(i), entity_id(1));
  store.clear();
  EXPECT_EQ(store.unique_hashes(), 0u);
  EXPECT_EQ(store.num_entities(h(5)), 0u);
}

TEST(Placement, DeterministicAndInRange) {
  const Placement p(13);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const NodeId a = p.owner(h(i));
    const NodeId b = p.owner(h(i));
    EXPECT_EQ(a, b);
    EXPECT_LT(raw(a), 13u);
  }
}

TEST(Placement, SpreadsHashesRoughlyEvenly) {
  const Placement p(8);
  std::vector<int> count(8, 0);
  constexpr int kN = 80000;
  for (std::uint64_t i = 0; i < kN; ++i) ++count[raw(p.owner(h(i)))];
  for (const int c : count) {
    EXPECT_NEAR(c, kN / 8, kN / 8 * 0.1);
  }
}

TEST(Placement, SingleNodeOwnsEverything) {
  const Placement p(1);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(raw(p.owner(h(i))), 0u);
}

}  // namespace
}  // namespace concord::dht
