// Tests for the zero-hop DHT store: model-based property checks against a
// std::map oracle, both allocation modes, and placement behaviour.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "dht/dht_store.hpp"
#include "dht/placement.hpp"

namespace concord::dht {
namespace {

ContentHash h(std::uint64_t v) { return ContentHash{v * 0x9e3779b97f4a7c15ULL, v}; }

class DhtStoreModes : public ::testing::TestWithParam<AllocMode> {};

TEST_P(DhtStoreModes, InsertLookupRemove) {
  DhtStore store(64, GetParam());
  EXPECT_TRUE(store.insert(h(1), entity_id(3)));
  EXPECT_FALSE(store.insert(h(1), entity_id(5)));  // entry exists, new bit
  EXPECT_EQ(store.num_entities(h(1)), 2u);
  EXPECT_TRUE(store.contains(h(1), entity_id(3)));
  EXPECT_FALSE(store.contains(h(1), entity_id(4)));
  EXPECT_EQ(store.entities(h(1)),
            (std::vector<EntityId>{entity_id(3), entity_id(5)}));

  EXPECT_TRUE(store.remove(h(1), entity_id(3)));
  EXPECT_EQ(store.num_entities(h(1)), 1u);
  EXPECT_TRUE(store.remove(h(1), entity_id(5)));
  EXPECT_EQ(store.unique_hashes(), 0u);  // entry erased when set drains
  EXPECT_FALSE(store.remove(h(1), entity_id(5)));
}

TEST_P(DhtStoreModes, IdempotentInsert) {
  DhtStore store(64, GetParam());
  store.insert(h(2), entity_id(1));
  store.insert(h(2), entity_id(1));
  EXPECT_EQ(store.num_entities(h(2)), 1u);
  EXPECT_EQ(store.unique_hashes(), 1u);
}

TEST_P(DhtStoreModes, RemoveUnknownHashFails) {
  DhtStore store(64, GetParam());
  EXPECT_FALSE(store.remove(h(99), entity_id(0)));
}

TEST_P(DhtStoreModes, GrowsPastInitialBuckets) {
  DhtStore store(32, GetParam());
  for (std::uint64_t i = 0; i < 5000; ++i) {
    store.insert(h(i), entity_id(static_cast<std::uint32_t>(i % 32)));
  }
  EXPECT_EQ(store.unique_hashes(), 5000u);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(store.contains(h(i), entity_id(static_cast<std::uint32_t>(i % 32)))) << i;
  }
}

TEST_P(DhtStoreModes, ForEachEntryVisitsAll) {
  DhtStore store(8, GetParam());
  for (std::uint64_t i = 0; i < 100; ++i) store.insert(h(i), entity_id(0));
  std::set<std::uint64_t> seen;
  store.for_each_entry([&](const ContentHash& hash, const std::uint64_t* words, std::size_t n) {
    seen.insert(hash.lo);
    ASSERT_GE(n, 1u);
    EXPECT_EQ(words[0], 1u);
  });
  EXPECT_EQ(seen.size(), 100u);
}

TEST_P(DhtStoreModes, ModelBasedRandomOps) {
  // Property: a long random insert/remove sequence matches a map<hash,set>.
  DhtStore store(128, GetParam());
  std::map<ContentHash, std::set<std::uint32_t>> model;
  Rng rng(2024);

  for (int step = 0; step < 20000; ++step) {
    const ContentHash hash = h(rng.below(300));
    const auto ent = static_cast<std::uint32_t>(rng.below(128));
    if (rng.chance(0.6)) {
      store.insert(hash, entity_id(ent));
      model[hash].insert(ent);
    } else {
      const bool removed = store.remove(hash, entity_id(ent));
      const auto it = model.find(hash);
      const bool model_removed = it != model.end() && it->second.erase(ent) > 0;
      ASSERT_EQ(removed, model_removed) << "step " << step;
      if (it != model.end() && it->second.empty()) model.erase(it);
    }
  }

  EXPECT_EQ(store.unique_hashes(), model.size());
  for (const auto& [hash, ents] : model) {
    ASSERT_EQ(store.num_entities(hash), ents.size());
    const auto got = store.entities(hash);
    ASSERT_EQ(got.size(), ents.size());
    for (const EntityId e : got) ASSERT_TRUE(ents.contains(raw(e)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllocModes, DhtStoreModes,
                         ::testing::Values(AllocMode::kMalloc, AllocMode::kPool));

TEST(DhtStore, PoolUsesLessMemoryThanMalloc) {
  // The Fig. 6 claim, as a hard invariant at steady state: for identically
  // loaded stores the pool's reserved bytes (minus slab overshoot) beat
  // malloc's real usable-size accounting.
  constexpr std::uint32_t kEntities = 64;
  constexpr std::uint64_t kHashes = 100000;
  DhtStore pool(kEntities, AllocMode::kPool);
  DhtStore mall(kEntities, AllocMode::kMalloc);
  for (std::uint64_t i = 0; i < kHashes; ++i) {
    pool.insert(h(i), entity_id(static_cast<std::uint32_t>(i % kEntities)));
    mall.insert(h(i), entity_id(static_cast<std::uint32_t>(i % kEntities)));
  }
  EXPECT_LT(pool.memory_bytes(), mall.memory_bytes());
}

TEST(DhtStore, MemoryAccountingShrinksOnRemove) {
  DhtStore store(8, AllocMode::kMalloc);
  for (std::uint64_t i = 0; i < 1000; ++i) store.insert(h(i), entity_id(0));
  const std::size_t full = store.memory_bytes();
  for (std::uint64_t i = 0; i < 1000; ++i) store.remove(h(i), entity_id(0));
  EXPECT_LT(store.memory_bytes(), full);
}

TEST(DhtStore, ClearReleasesEverything) {
  DhtStore store(8, AllocMode::kPool);
  for (std::uint64_t i = 0; i < 100; ++i) store.insert(h(i), entity_id(1));
  store.clear();
  EXPECT_EQ(store.unique_hashes(), 0u);
  EXPECT_EQ(store.num_entities(h(5)), 0u);
}

TEST(Placement, DeterministicAndInRange) {
  const Placement p(13);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const NodeId a = p.owner(h(i));
    const NodeId b = p.owner(h(i));
    EXPECT_EQ(a, b);
    EXPECT_LT(raw(a), 13u);
  }
}

TEST(Placement, SpreadsHashesRoughlyEvenly) {
  const Placement p(8);
  std::vector<int> count(8, 0);
  constexpr int kN = 80000;
  for (std::uint64_t i = 0; i < kN; ++i) ++count[raw(p.owner(h(i)))];
  for (const int c : count) {
    EXPECT_NEAR(c, kN / 8, kN / 8 * 0.1);
  }
}

TEST(Placement, SingleNodeOwnsEverything) {
  const Placement p(1);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(raw(p.owner(h(i))), 0u);
}

}  // namespace
}  // namespace concord::dht
