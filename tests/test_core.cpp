// Tests for the cluster core: daemons, update routing, registry, departures.
#include <gtest/gtest.h>

#include <cstring>

#include "core/cluster.hpp"
#include "workload/workloads.hpp"

namespace concord::core {
namespace {

constexpr std::size_t kBlk = 256;

ClusterParams small_params(std::uint32_t nodes = 4) {
  ClusterParams p;
  p.num_nodes = nodes;
  p.max_entities = 32;
  return p;
}

TEST(Cluster, CreateEntityRegistersAndTracks) {
  Cluster c(small_params());
  mem::MemoryEntity& e = c.create_entity(node_id(2), EntityKind::kProcess, 10, kBlk);
  EXPECT_EQ(raw(e.id()), 0u);
  EXPECT_EQ(raw(e.host()), 2u);
  EXPECT_EQ(c.registry().host_of(e.id()), node_id(2));
  EXPECT_TRUE(c.registry().alive(e.id()));
  EXPECT_EQ(c.daemon(node_id(2)).monitor().tracked_entities(), 1u);
}

TEST(Cluster, ScanPopulatesShardsByPlacement) {
  Cluster c(small_params());
  for (std::uint32_t n = 0; n < 4; ++n) {
    mem::MemoryEntity& e = c.create_entity(node_id(n), EntityKind::kProcess, 32, kBlk);
    workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 7 + n));
  }
  const mem::ScanStats st = c.scan_all();
  EXPECT_EQ(st.blocks_hashed, 4u * 32u);
  EXPECT_EQ(st.inserts_emitted, 4u * 32u);

  // Every hash in every shard must be placed correctly.
  std::size_t total = 0;
  for (std::uint32_t n = 0; n < 4; ++n) {
    c.daemon(node_id(n)).store().for_each_entry(
        [&](const ContentHash& h, const std::uint64_t*, std::size_t) {
          EXPECT_EQ(c.placement().owner(h), node_id(n));
          ++total;
        });
  }
  EXPECT_EQ(total, c.total_unique_hashes());
  EXPECT_GT(total, 0u);
}

TEST(Cluster, DuplicateContentMergesIntoOneEntry) {
  Cluster c(small_params(2));
  mem::MemoryEntity& a = c.create_entity(node_id(0), EntityKind::kProcess, 1, kBlk);
  mem::MemoryEntity& b = c.create_entity(node_id(1), EntityKind::kProcess, 1, kBlk);
  const std::vector<std::byte> same(kBlk, std::byte{42});
  a.write_block(0, same);
  b.write_block(0, same);
  (void)c.scan_all();

  EXPECT_EQ(c.total_unique_hashes(), 1u);
  const hash::BlockHasher hasher;
  const ContentHash h = hasher(std::span<const std::byte>(same));
  const NodeId owner = c.placement().owner(h);
  EXPECT_EQ(c.daemon(owner).store().num_entities(h), 2u);
}

TEST(Cluster, RescanAfterMutationMovesHashes) {
  Cluster c(small_params(2));
  mem::MemoryEntity& e = c.create_entity(node_id(0), EntityKind::kProcess, 8, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 3));
  (void)c.scan_all();
  const std::size_t before = c.total_unique_hashes();

  workload::mutate(e, 1.0, 99);  // rewrite everything
  const mem::ScanStats st = c.scan_all();
  EXPECT_EQ(st.removes_emitted, 8u);
  EXPECT_EQ(st.inserts_emitted, 8u);
  EXPECT_EQ(c.total_unique_hashes(), before);  // old gone, new present
}

TEST(Cluster, DepartureScrubsDhtBestEffort) {
  Cluster c(small_params(2));
  mem::MemoryEntity& e = c.create_entity(node_id(0), EntityKind::kProcess, 16, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 5));
  (void)c.scan_all();
  EXPECT_GT(c.total_unique_hashes(), 0u);

  c.depart_entity(e.id());
  EXPECT_FALSE(c.registry().alive(e.id()));
  EXPECT_EQ(c.total_unique_hashes(), 0u);  // no loss configured -> full scrub
}

TEST(Cluster, SingleNodeDhtPutsEverythingOnNodeZero) {
  ClusterParams p = small_params(4);
  p.single_node_dht = true;
  Cluster c(p);
  for (std::uint32_t n = 0; n < 4; ++n) {
    mem::MemoryEntity& e = c.create_entity(node_id(n), EntityKind::kProcess, 8, kBlk);
    workload::fill(e, workload::defaults_for(workload::Kind::kRandom, n + 1));
  }
  (void)c.scan_all();
  EXPECT_GT(c.daemon(node_id(0)).store().unique_hashes(), 0u);
  for (std::uint32_t n = 1; n < 4; ++n) {
    EXPECT_EQ(c.daemon(node_id(n)).store().unique_hashes(), 0u);
  }
}

TEST(Cluster, UpdateLossLeavesDhtIncomplete) {
  ClusterParams p = small_params(4);
  p.fabric.loss_rate = 0.5;
  p.seed = 11;
  Cluster c(p);
  // Host entities away from their shard owners so updates cross the wire.
  for (std::uint32_t n = 0; n < 4; ++n) {
    mem::MemoryEntity& e = c.create_entity(node_id(n), EntityKind::kProcess, 64, kBlk);
    workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 21 + n));
  }
  (void)c.scan_all();
  const std::size_t tracked = c.total_unique_hashes();
  EXPECT_GT(tracked, 0u);
  EXPECT_LT(tracked, 4u * 64u);  // some updates were lost — best effort
  EXPECT_GT(c.fabric().total_traffic().msgs_dropped, 0u);
}

TEST(Cluster, SuperFastHasherWorksEndToEnd) {
  ClusterParams p = small_params(2);
  p.hash_algorithm = hash::Algorithm::kSuperFast;
  Cluster c(p);
  mem::MemoryEntity& e = c.create_entity(node_id(0), EntityKind::kProcess, 8, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 2));
  (void)c.scan_all();
  EXPECT_EQ(c.total_unique_hashes(), 8u);
}

TEST(EntityRegistry, OnNodeFiltersDeparted) {
  EntityRegistry reg(16);
  const EntityId a = reg.register_entity(node_id(1), EntityKind::kProcess);
  const EntityId b = reg.register_entity(node_id(1), EntityKind::kVirtualMachine);
  (void)reg.register_entity(node_id(2), EntityKind::kProcess);
  EXPECT_EQ(reg.on_node(node_id(1)).size(), 2u);
  reg.deregister(a);
  const auto rest = reg.on_node(node_id(1));
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], b);
  EXPECT_EQ(reg.info(b).kind, EntityKind::kVirtualMachine);
}

}  // namespace
}  // namespace concord::core
