// Tests for the remaining application services: collective migration and
// VM reconstruction, plus the workload generators they run on.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "query/queries.hpp"
#include "services/collective_checkpoint.hpp"
#include "services/migration.hpp"
#include "services/reconstruction.hpp"
#include "svc/command_engine.hpp"
#include "workload/workloads.hpp"

namespace concord::services {
namespace {

constexpr std::size_t kBlk = 256;

std::unique_ptr<core::Cluster> make_cluster(std::uint32_t nodes, std::uint64_t seed = 17) {
  core::ClusterParams p;
  p.num_nodes = nodes;
  p.max_entities = 64;
  p.seed = seed;
  return std::make_unique<core::Cluster>(p);
}

std::vector<std::byte> snapshot(const mem::MemoryEntity& e) {
  std::vector<std::byte> out;
  out.reserve(e.memory_bytes());
  for (BlockIndex b = 0; b < e.num_blocks(); ++b) {
    out.insert(out.end(), e.block(b).begin(), e.block(b).end());
  }
  return out;
}

TEST(Workloads, MoldyHasConsiderableSharingNastyHasNone) {
  auto c = make_cluster(4);
  std::vector<EntityId> moldy, nasty;
  for (std::uint32_t n = 0; n < 4; ++n) {
    mem::MemoryEntity& m = c->create_entity(node_id(n), EntityKind::kProcess, 64, kBlk);
    auto wp = workload::defaults_for(workload::Kind::kMoldy, 3);
    wp.pool_pages = 64;
    workload::fill(m, wp);
    moldy.push_back(m.id());
    mem::MemoryEntity& x = c->create_entity(node_id(n), EntityKind::kProcess, 64, kBlk);
    workload::fill(x, workload::defaults_for(workload::Kind::kNasty, 3));
    nasty.push_back(x.id());
  }
  (void)c->scan_all();
  query::QueryEngine q(*c);
  const auto moldy_ans = q.sharing(node_id(0), moldy);
  const auto nasty_ans = q.sharing(node_id(0), nasty);
  EXPECT_GT(moldy_ans.degree_of_sharing(), 0.2);
  EXPECT_DOUBLE_EQ(nasty_ans.degree_of_sharing(), 0.0);
}

TEST(Workloads, ExpectedDosApproximatesMeasured) {
  auto c = make_cluster(4);
  std::vector<EntityId> ids;
  auto wp = workload::defaults_for(workload::Kind::kMoldy, 4);
  wp.pool_pages = 64;
  for (std::uint32_t n = 0; n < 4; ++n) {
    mem::MemoryEntity& e = c->create_entity(node_id(n), EntityKind::kProcess, 256, kBlk);
    workload::fill(e, wp);
    ids.push_back(e.id());
  }
  (void)c->scan_all();
  query::QueryEngine q(*c);
  const double measured = q.sharing(node_id(0), ids).degree_of_sharing();
  const double expected = workload::expected_degree_of_sharing(wp, 4, 256);
  EXPECT_NEAR(measured, expected, 0.08);
}

TEST(Workloads, DeterministicPerSeedAndEntity) {
  mem::MemoryEntity a(entity_id(0), node_id(0), EntityKind::kProcess, 16, kBlk);
  mem::MemoryEntity b(entity_id(0), node_id(0), EntityKind::kProcess, 16, kBlk);
  const auto wp = workload::defaults_for(workload::Kind::kMoldy, 8);
  workload::fill(a, wp);
  workload::fill(b, wp);
  EXPECT_EQ(snapshot(a), snapshot(b));

  mem::MemoryEntity d(entity_id(1), node_id(0), EntityKind::kProcess, 16, kBlk);
  workload::fill(d, wp);
  EXPECT_NE(snapshot(a), snapshot(d));  // different entity -> different uniques
}

TEST(Workloads, MutateDirtiesApproximatelyFraction) {
  mem::MemoryEntity e(entity_id(0), node_id(0), EntityKind::kProcess, 1000, kBlk);
  workload::fill(e, workload::defaults_for(workload::Kind::kRandom, 2));
  (void)e.consume_dirty();
  workload::mutate(e, 0.3, 77);
  const double dirty = static_cast<double>(e.dirty().count()) / 1000.0;
  EXPECT_NEAR(dirty, 0.3, 0.05);
}

TEST(Migration, SharedContentAvoidsTheWire) {
  auto c = make_cluster(3);
  // Mover on node 0; a resident twin with identical content on node 2.
  mem::MemoryEntity& mover = c->create_entity(node_id(0), EntityKind::kVirtualMachine, 32, kBlk);
  mem::MemoryEntity& twin = c->create_entity(node_id(2), EntityKind::kVirtualMachine, 32, kBlk);
  workload::fill(mover, workload::defaults_for(workload::Kind::kRandom, 21));
  for (BlockIndex b = 0; b < 32; ++b) twin.write_block(b, mover.block(b));
  (void)c->scan_all();
  const std::vector<std::byte> want = snapshot(mover);

  CollectiveMigration mig(*c);
  const MigrationPlanItem item{mover.id(), node_id(2)};
  const MigrationStats stats = mig.migrate(std::span(&item, 1));
  ASSERT_TRUE(ok(stats.status));
  EXPECT_EQ(stats.blocks_total, 32u);
  EXPECT_EQ(stats.blocks_reconstructed, 32u);  // twin served everything
  EXPECT_EQ(stats.blocks_shipped, 0u);
  EXPECT_EQ(stats.wire_bytes, 0u);

  ASSERT_EQ(stats.new_ids.size(), 1u);
  EXPECT_EQ(snapshot(c->entity(stats.new_ids[0])), want);
  EXPECT_FALSE(c->registry().alive(mover.id()));
}

TEST(Migration, UniqueContentMustShip) {
  auto c = make_cluster(3);
  mem::MemoryEntity& mover = c->create_entity(node_id(0), EntityKind::kVirtualMachine, 32, kBlk);
  workload::fill(mover, workload::defaults_for(workload::Kind::kRandom, 22));
  (void)c->scan_all();
  const std::vector<std::byte> want = snapshot(mover);

  CollectiveMigration mig(*c);
  const MigrationPlanItem item{mover.id(), node_id(1)};
  const MigrationStats stats = mig.migrate(std::span(&item, 1));
  ASSERT_TRUE(ok(stats.status));
  EXPECT_EQ(stats.blocks_shipped, 32u);
  EXPECT_EQ(stats.blocks_reconstructed, 0u);
  EXPECT_EQ(stats.wire_bytes, 32u * kBlk);
  EXPECT_EQ(snapshot(c->entity(stats.new_ids[0])), want);
}

TEST(Migration, StaleDhtClaimsFallBackToShipping) {
  auto c = make_cluster(3);
  mem::MemoryEntity& mover = c->create_entity(node_id(0), EntityKind::kVirtualMachine, 16, kBlk);
  mem::MemoryEntity& twin = c->create_entity(node_id(1), EntityKind::kVirtualMachine, 16, kBlk);
  workload::fill(mover, workload::defaults_for(workload::Kind::kRandom, 23));
  for (BlockIndex b = 0; b < 16; ++b) twin.write_block(b, mover.block(b));
  (void)c->scan_all();
  const std::vector<std::byte> want = snapshot(mover);
  // Invalidate the twin after the scan: the DHT still claims residency.
  workload::mutate(twin, 1.0, 555);

  CollectiveMigration mig(*c);
  const MigrationPlanItem item{mover.id(), node_id(1)};
  const MigrationStats stats = mig.migrate(std::span(&item, 1));
  ASSERT_TRUE(ok(stats.status));
  EXPECT_GT(stats.stale_claims, 0u);
  EXPECT_EQ(stats.blocks_shipped, 16u);  // verification rejected every claim
  EXPECT_EQ(snapshot(c->entity(stats.new_ids[0])), want);
}

TEST(Migration, GroupMigrationMovesEveryEntity) {
  auto c = make_cluster(4);
  std::vector<MigrationPlanItem> plan;
  std::vector<std::vector<std::byte>> want;
  for (std::uint32_t i = 0; i < 3; ++i) {
    mem::MemoryEntity& e = c->create_entity(node_id(i), EntityKind::kVirtualMachine, 16, kBlk);
    auto wp = workload::defaults_for(workload::Kind::kMoldy, 30 + i);
    workload::fill(e, wp);
    plan.push_back({e.id(), node_id(3)});
    want.push_back(snapshot(e));
  }
  (void)c->scan_all();

  CollectiveMigration mig(*c);
  const MigrationStats stats = mig.migrate(plan);
  ASSERT_TRUE(ok(stats.status));
  ASSERT_EQ(stats.new_ids.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(snapshot(c->entity(stats.new_ids[i])), want[i]);
    EXPECT_EQ(c->registry().host_of(stats.new_ids[i]), node_id(3));
  }
}

struct ReconRig {
  std::unique_ptr<core::Cluster> cluster;
  std::vector<EntityId> ses;
  std::unique_ptr<CollectiveCheckpointService> ckpt;
  std::vector<std::byte> original;

  static ReconRig make(bool keep_live_twin, std::uint64_t seed) {
    ReconRig r;
    r.cluster = make_cluster(3, seed);
    mem::MemoryEntity& vm =
        r.cluster->create_entity(node_id(0), EntityKind::kVirtualMachine, 24, kBlk);
    auto wp = workload::defaults_for(workload::Kind::kMoldy, seed);
    wp.pool_pages = 16;
    workload::fill(vm, wp);
    r.original = snapshot(vm);
    if (keep_live_twin) {
      mem::MemoryEntity& twin =
          r.cluster->create_entity(node_id(1), EntityKind::kVirtualMachine, 24, kBlk);
      for (BlockIndex b = 0; b < 24; ++b) twin.write_block(b, vm.block(b));
    }
    (void)r.cluster->scan_all();

    r.ckpt = std::make_unique<CollectiveCheckpointService>(*r.cluster);
    svc::CommandEngine engine(*r.cluster);
    svc::CommandSpec spec;
    spec.service_entities = {vm.id()};
    const svc::CommandStats stats = engine.execute(*r.ckpt, spec);
    EXPECT_TRUE(ok(stats.status));
    r.ses = {vm.id()};
    // The original VM departs; its image lives only in the checkpoint (and,
    // if present, the twin's live memory).
    r.cluster->depart_entity(vm.id());
    return r;
  }
};

TEST(Reconstruction, FromStorageWhenNoLiveReplicas) {
  ReconRig r = ReconRig::make(/*keep_live_twin=*/false, 41);
  ReconstructionStats stats;
  VmReconstruction recon(*r.cluster);
  const auto id =
      recon.reconstruct(r.ckpt->se_path(r.ses[0]), r.ckpt->shared_path(), node_id(2), stats);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(stats.from_live_replicas, 0u);
  EXPECT_GT(stats.from_storage, 0u);
  EXPECT_EQ(snapshot(r.cluster->entity(id.value())), r.original);
}

TEST(Reconstruction, PrefersLiveReplicas) {
  ReconRig r = ReconRig::make(/*keep_live_twin=*/true, 42);
  ReconstructionStats stats;
  VmReconstruction recon(*r.cluster);
  const auto id =
      recon.reconstruct(r.ckpt->se_path(r.ses[0]), r.ckpt->shared_path(), node_id(2), stats);
  ASSERT_TRUE(id.has_value());
  EXPECT_GT(stats.from_live_replicas, 0u);  // the twin served content
  EXPECT_EQ(snapshot(r.cluster->entity(id.value())), r.original);
}

TEST(Reconstruction, MissingCheckpointFails) {
  auto c = make_cluster(2);
  ReconstructionStats stats;
  VmReconstruction recon(*c);
  const auto id = recon.reconstruct("nope", "also-nope", node_id(0), stats);
  EXPECT_FALSE(id.has_value());
  EXPECT_EQ(id.status(), Status::kNotFound);
}

}  // namespace
}  // namespace concord::services
