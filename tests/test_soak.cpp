// Soak test: the platform in steady state. An application computes
// (mutates memory) for many epochs on a lossy site while ConCORD scans,
// answers queries, checkpoints, audits, migrates, and recovers — with the
// core invariants checked continuously. This is the "runs for a week"
// test at minutes-scale.
#include <gtest/gtest.h>

#include <memory>

#include "query/queries.hpp"
#include "services/checkpoint_format.hpp"
#include "services/collective_checkpoint.hpp"
#include "services/dht_audit.hpp"
#include "services/migration.hpp"
#include "svc/command_engine.hpp"
#include "workload/workloads.hpp"

namespace concord {
namespace {

constexpr std::size_t kBlk = 512;

std::vector<std::byte> snapshot(const mem::MemoryEntity& e) {
  std::vector<std::byte> out;
  for (BlockIndex b = 0; b < e.num_blocks(); ++b) {
    out.insert(out.end(), e.block(b).begin(), e.block(b).end());
  }
  return out;
}

TEST(Soak, TwentyEpochsOfChurnOnALossySite) {
  core::ClusterParams p;
  p.num_nodes = 6;
  p.max_entities = 64;
  p.seed = 20140623;
  p.fabric.loss_rate = 0.08;
  p.detect_mode = mem::DetectMode::kDirtyBit;
  core::Cluster cluster(p);

  std::vector<EntityId> app;
  for (std::uint32_t n = 0; n < 6; ++n) {
    mem::MemoryEntity& e = cluster.create_entity(node_id(n), EntityKind::kProcess, 32, kBlk);
    auto wp = workload::defaults_for(workload::Kind::kMoldy, 500 + n);
    wp.pool_pages = 48;
    workload::fill(e, wp);
    app.push_back(e.id());
  }
  (void)cluster.scan_all();

  query::QueryEngine queries(cluster);
  svc::CommandEngine engine(cluster);
  services::DhtAudit audit(cluster);
  sim::Time last_time = cluster.sim().now();

  for (int epoch = 1; epoch <= 20; ++epoch) {
    // The application computes.
    for (const EntityId id : app) {
      workload::mutate(cluster.entity(id), 0.15, 1000u + static_cast<std::uint64_t>(epoch));
    }
    (void)cluster.scan_all();

    // Invariant: virtual time is monotone.
    ASSERT_GE(cluster.sim().now(), last_time);
    last_time = cluster.sim().now();

    // Invariant: the sharing decomposition always holds. (Counts themselves
    // are best-effort in both directions under loss: dropped inserts
    // undercount, dropped removes leave stale entries that overcount.)
    const auto live = cluster.live_entities();
    const query::SharingAnswer sharing = queries.sharing(node_id(0), live);
    ASSERT_EQ(sharing.sharing, sharing.intra_sharing + sharing.inter_sharing);
    ASSERT_GT(sharing.unique_hashes, 0u);

    // Every 5th epoch: checkpoint everything and verify restores.
    if (epoch % 5 == 0) {
      services::CollectiveCheckpointService ckpt(cluster);
      svc::CommandSpec spec;
      spec.service_entities = live;
      spec.config.set("ckpt.dir", "soak-" + std::to_string(epoch));
      const svc::CommandStats stats = engine.execute(ckpt, spec);
      ASSERT_TRUE(ok(stats.status)) << "epoch " << epoch;
      for (const EntityId id : live) {
        const auto mem =
            services::restore_entity(cluster.fs(), ckpt.se_path(id), ckpt.shared_path());
        ASSERT_TRUE(mem.has_value()) << "epoch " << epoch << " entity " << raw(id);
        ASSERT_EQ(mem.value(), snapshot(cluster.entity(id)));
      }
    }

    // Every 7th epoch: audit converges the lossy database.
    if (epoch % 7 == 0) {
      const services::AuditReport r = audit.run_to_convergence(12);
      EXPECT_GT(r.entries_checked, 0u);
    }

    // Epoch 10: migrate one process and keep using its replacement.
    if (epoch == 10) {
      const std::vector<std::byte> before = snapshot(cluster.entity(app[2]));
      services::CollectiveMigration mig(cluster);
      const services::MigrationPlanItem item{app[2], node_id(5)};
      const services::MigrationStats ms = mig.migrate(std::span(&item, 1));
      ASSERT_TRUE(ok(ms.status));
      ASSERT_EQ(snapshot(cluster.entity(ms.new_ids[0])), before);
      app[2] = ms.new_ids[0];
    }
  }

  // End state: one audit pass with the network healed leaves the database
  // matching ground truth for every live entity.
  cluster.fabric().set_loss_rate(0.0);
  (void)audit.run_to_convergence(12);
  const hash::BlockHasher hasher;
  for (const EntityId id : cluster.live_entities()) {
    const mem::MemoryEntity& e = cluster.entity(id);
    for (BlockIndex b = 0; b < e.num_blocks(); ++b) {
      const ContentHash h = hasher(e.block(b));
      ASSERT_TRUE(cluster.daemon(cluster.placement().owner(h)).store().contains(h, id))
          << "entity " << raw(id) << " block " << b;
    }
  }
}

}  // namespace
}  // namespace concord
