// Tests for the query engine (Fig. 3): node-wise and collective queries
// checked against brute-force oracles computed from ground-truth memory.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "query/queries.hpp"
#include "workload/workloads.hpp"

namespace concord::query {
namespace {

constexpr std::size_t kBlk = 256;

struct Oracle {
  // hash -> set of (entity) and per-node split, from ground-truth memory.
  std::map<ContentHash, std::set<std::uint32_t>> holders;

  static Oracle build(core::Cluster& c, std::span<const EntityId> set) {
    Oracle o;
    const hash::BlockHasher hasher(c.params().hash_algorithm);
    for (const EntityId id : set) {
      const mem::MemoryEntity& e = c.entity(id);
      for (BlockIndex b = 0; b < e.num_blocks(); ++b) {
        o.holders[hasher(e.block(b))].insert(raw(id));
      }
    }
    return o;
  }

  [[nodiscard]] std::uint64_t total(const core::Cluster&) const {
    std::uint64_t t = 0;
    for (const auto& [h, s] : holders) t += s.size();
    return t;
  }
  [[nodiscard]] std::uint64_t unique() const { return holders.size(); }
  [[nodiscard]] std::uint64_t intra(const core::Cluster& c) const {
    std::uint64_t v = 0;
    for (const auto& [h, s] : holders) {
      std::map<std::uint32_t, std::uint64_t> per_node;
      for (const std::uint32_t e : s) ++per_node[raw(c.registry().host_of(entity_id(e)))];
      for (const auto& [n, cnt] : per_node) v += cnt - 1;
    }
    return v;
  }
  [[nodiscard]] std::uint64_t inter(const core::Cluster& c) const {
    std::uint64_t v = 0;
    for (const auto& [h, s] : holders) {
      std::set<std::uint32_t> nodes;
      for (const std::uint32_t e : s) nodes.insert(raw(c.registry().host_of(entity_id(e))));
      v += nodes.size() - 1;
    }
    return v;
  }
  [[nodiscard]] std::uint64_t at_least(std::size_t k) const {
    std::uint64_t v = 0;
    for (const auto& [h, s] : holders) v += (s.size() >= k) ? std::uint64_t{1} : 0;
    return v;
  }
};

std::unique_ptr<core::Cluster> make_cluster(std::uint32_t nodes, std::uint32_t ents_per_node,
                                            workload::Kind kind, std::uint64_t seed,
                                            bool single_dht = false) {
  core::ClusterParams p;
  p.num_nodes = nodes;
  p.max_entities = nodes * ents_per_node + 8;
  p.seed = seed;
  p.single_node_dht = single_dht;
  auto cluster = std::make_unique<core::Cluster>(p);
  core::Cluster& c = *cluster;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    for (std::uint32_t i = 0; i < ents_per_node; ++i) {
      mem::MemoryEntity& e =
          c.create_entity(node_id(n), EntityKind::kProcess, 48, kBlk);
      auto wp = workload::defaults_for(kind, seed);
      wp.pool_pages = 64;
      workload::fill(e, wp);
    }
  }
  (void)c.scan_all();
  return cluster;
}

TEST(NodewiseQueries, NumCopiesAndEntitiesMatchGroundTruth) {
  const auto cl = make_cluster(4, 2, workload::Kind::kMoldy, 5);
  core::Cluster& c = *cl;
  QueryEngine q(c);
  const auto all = c.live_entities();
  const Oracle oracle = Oracle::build(c, all);

  int checked = 0;
  for (const auto& [h, holders] : oracle.holders) {
    if (++checked > 40) break;  // spot-check a sample
    const NodewiseAnswer nc = q.num_copies(node_id(1), h);
    EXPECT_EQ(nc.num_copies, holders.size()) << h.to_string();
    EXPECT_GT(nc.latency, 0);

    const NodewiseAnswer en = q.entities(node_id(2), h);
    ASSERT_EQ(en.entities.size(), holders.size());
    for (const EntityId e : en.entities) EXPECT_TRUE(holders.contains(raw(e)));
  }
}

TEST(NodewiseQueries, UnknownHashReturnsEmpty) {
  const auto cl = make_cluster(2, 1, workload::Kind::kRandom, 6);
  core::Cluster& c = *cl;
  QueryEngine q(c);
  const ContentHash bogus{0xdead, 0xbeef};
  EXPECT_EQ(q.num_copies(node_id(0), bogus).num_copies, 0u);
  EXPECT_TRUE(q.entities(node_id(0), bogus).entities.empty());
}

class CollectiveQueryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollectiveQueryProperty, SharingMatchesOracle) {
  const auto cl = make_cluster(4, 2, workload::Kind::kMoldy, GetParam());
  core::Cluster& c = *cl;
  QueryEngine q(c);
  const auto all = c.live_entities();
  const Oracle oracle = Oracle::build(c, all);

  const SharingAnswer ans = q.sharing(node_id(0), all);
  EXPECT_EQ(ans.total_copies, oracle.total(c));
  EXPECT_EQ(ans.unique_hashes, oracle.unique());
  EXPECT_EQ(ans.sharing, oracle.total(c) - oracle.unique());
  EXPECT_EQ(ans.intra_sharing, oracle.intra(c));
  EXPECT_EQ(ans.inter_sharing, oracle.inter(c));
  // Identity from the definitions: every redundant copy is intra or inter.
  EXPECT_EQ(ans.sharing, ans.intra_sharing + ans.inter_sharing);
  EXPECT_GT(ans.latency, 0);
}

TEST_P(CollectiveQueryProperty, KCopyQueriesMatchOracle) {
  const auto cl = make_cluster(4, 2, workload::Kind::kMoldy, GetParam() + 100);
  core::Cluster& c = *cl;
  QueryEngine q(c);
  const auto all = c.live_entities();
  const Oracle oracle = Oracle::build(c, all);

  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const KCopyAnswer num = q.num_shared_content(node_id(0), all, k);
    EXPECT_EQ(num.num_hashes, oracle.at_least(k)) << "k=" << k;

    const KCopyAnswer hashes = q.shared_content(node_id(0), all, k);
    EXPECT_EQ(hashes.hashes.size(), oracle.at_least(k));
    for (const ContentHash& h : hashes.hashes) {
      ASSERT_GE(oracle.holders.at(h).size(), k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectiveQueryProperty, ::testing::Values(1, 2, 3, 4));

TEST(CollectiveQueries, SubsetScopesTheAnswer) {
  const auto cl = make_cluster(4, 2, workload::Kind::kMoldy, 9);
  core::Cluster& c = *cl;
  QueryEngine q(c);
  const auto all = c.live_entities();
  const std::vector<EntityId> subset(all.begin(), all.begin() + 3);
  const Oracle oracle = Oracle::build(c, subset);

  const SharingAnswer ans = q.sharing(node_id(0), subset);
  EXPECT_EQ(ans.total_copies, oracle.total(c));
  EXPECT_EQ(ans.unique_hashes, oracle.unique());
}

TEST(CollectiveQueries, NastyWorkloadHasNoSharing) {
  const auto cl = make_cluster(4, 2, workload::Kind::kNasty, 10);
  core::Cluster& c = *cl;
  QueryEngine q(c);
  const auto all = c.live_entities();
  const SharingAnswer ans = q.sharing(node_id(0), all);
  EXPECT_EQ(ans.sharing, 0u);
  EXPECT_DOUBLE_EQ(ans.degree_of_sharing(), 0.0);
}

TEST(CollectiveQueries, SingleAndDistributedDhtAgree) {
  const auto dist_cl = make_cluster(4, 2, workload::Kind::kMoldy, 12, false);
  core::Cluster& dist = *dist_cl;
  const auto single_cl = make_cluster(4, 2, workload::Kind::kMoldy, 12, true);
  core::Cluster& single = *single_cl;
  QueryEngine qd(dist), qs(single);
  const auto all = dist.live_entities();

  const SharingAnswer a = qd.sharing(node_id(0), all);
  const SharingAnswer b = qs.sharing(node_id(0), all);
  EXPECT_EQ(a.total_copies, b.total_copies);
  EXPECT_EQ(a.unique_hashes, b.unique_hashes);
  EXPECT_EQ(a.intra_sharing, b.intra_sharing);
  EXPECT_EQ(a.inter_sharing, b.inter_sharing);
}

TEST(CollectiveQueries, EmptyEntitySetIsZero) {
  const auto cl = make_cluster(2, 1, workload::Kind::kMoldy, 13);
  core::Cluster& c = *cl;
  QueryEngine q(c);
  const SharingAnswer ans = q.sharing(node_id(0), {});
  EXPECT_EQ(ans.total_copies, 0u);
  EXPECT_EQ(ans.unique_hashes, 0u);
}

}  // namespace
}  // namespace concord::query
