// Replicated DHT shards (DESIGN.md §14): replica-group placement
// properties, single-phase write fan-out, failover reads with dirty-shard
// refusals, cheap replica resync, and the R = 1 byte-identity guarantee.
//
// The headline invariants:
//   * replicas(h) is a pure function of (hash, view, R): primary first,
//     distinct, alive, and owner() == replicas()[0] always;
//   * at R = 3 every read through an owner crash is served by some replica
//     (zero Status::kDegraded across the whole crash -> heal schedule);
//   * a replica that missed updates (dirty) refuses reads until resynced,
//     and the read fails over instead of returning stale data;
//   * ReplicaResync + DhtAudit converge to a clean database under loss and
//     a second mid-schedule crash;
//   * R = 1 runs are byte-identical to the pre-replication behavior, for
//     any sim_workers count, with or without a ReplicaResync constructed.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hash/block_hasher.hpp"
#include "query/queries.hpp"
#include "services/dht_audit.hpp"
#include "services/replica_resync.hpp"
#include "services/shard_recovery.hpp"
#include "workload/workloads.hpp"

namespace concord {
namespace {

constexpr std::size_t kBlk = 256;

std::unique_ptr<core::Cluster> make_cluster(std::uint32_t nodes, std::uint32_t repl,
                                            std::uint64_t seed, double loss = 0.0) {
  core::ClusterParams p;
  p.num_nodes = nodes;
  p.max_entities = 64;
  p.seed = seed;
  p.dht_replication = repl;
  p.fabric.loss_rate = loss;
  return std::make_unique<core::Cluster>(p);
}

std::vector<EntityId> populate(core::Cluster& c, std::uint32_t per_node,
                               std::size_t blocks = 12) {
  std::vector<EntityId> out;
  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    for (std::uint32_t i = 0; i < per_node; ++i) {
      mem::MemoryEntity& e =
          c.create_entity(node_id(n), EntityKind::kProcess, blocks, kBlk);
      workload::fill(e, workload::defaults_for(workload::Kind::kMoldy, n * 10 + i));
      out.push_back(e.id());
    }
  }
  (void)c.scan_all();
  return out;
}

/// Distinct content hashes of one entity's ground-truth memory.
std::vector<ContentHash> sample_hashes(const core::Cluster& c, EntityId id,
                                       std::size_t cap = 48) {
  std::vector<ContentHash> out;
  std::set<ContentHash> seen;
  const hash::BlockHasher hasher(c.params().hash_algorithm);
  const mem::MemoryEntity& e = c.entity(id);
  for (BlockIndex b = 0; b < e.num_blocks() && out.size() < cap; ++b) {
    const ContentHash h = hasher(e.block(b));
    if (seen.insert(h).second) out.push_back(h);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Placement: replica groups as a pure function of (hash, view, R).
// ---------------------------------------------------------------------------

TEST(ReplicaPlacement, GroupIsPrimaryFirstDistinctAliveAndSized) {
  dht::Placement pl(8);
  pl.set_replication(3);
  std::vector<bool> alive(8, true);
  alive[2] = alive[5] = false;
  pl.set_view(1, alive);

  for (std::uint64_t i = 0; i < 200; ++i) {
    const ContentHash h{i * 0x9e3779b97f4a7c15ULL, i};
    const std::vector<NodeId> group = pl.replicas(h);
    ASSERT_EQ(group.size(), 3u);             // 6 alive >= R
    EXPECT_EQ(group[0], pl.owner(h));        // primary first, always
    std::set<std::uint32_t> distinct;
    for (const NodeId n : group) {
      EXPECT_TRUE(alive[raw(n)]) << "dead node " << raw(n) << " in group";
      distinct.insert(raw(n));
    }
    EXPECT_EQ(distinct.size(), group.size());
    // is_replica agrees with the materialized group, member or not.
    for (std::uint32_t n = 0; n < 8; ++n) {
      const bool in_group = distinct.contains(n);
      EXPECT_EQ(pl.is_replica(pl.home(h), node_id(n)), in_group) << n;
    }
  }
}

TEST(ReplicaPlacement, RequalsOneIsExactlyTheSingleOwner) {
  dht::Placement pl(5);
  pl.set_replication(1);
  std::vector<bool> alive(5, true);
  alive[1] = false;
  pl.set_view(7, alive);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const ContentHash h{i, ~i};
    EXPECT_EQ(pl.replicas(h), std::vector<NodeId>{pl.owner(h)});
  }
}

TEST(ReplicaPlacement, ReplicationClampsToClusterSize) {
  dht::Placement pl(3);
  pl.set_replication(0);
  EXPECT_EQ(pl.replication(), 1u);
  pl.set_replication(99);
  EXPECT_EQ(pl.replication(), 3u);
  const ContentHash h{42, 7};
  EXPECT_EQ(pl.replicas(h).size(), 3u);
}

TEST(ReplicaPlacement, GroupShrinksWithAliveCountAndAllDeadFallsBackToHome) {
  dht::Placement pl(4);
  pl.set_replication(3);
  std::vector<bool> alive(4, false);
  alive[2] = true;
  pl.set_view(1, alive);
  const ContentHash h{11, 13};
  EXPECT_EQ(pl.replicas(h), std::vector<NodeId>{node_id(2)});

  pl.set_view(2, std::vector<bool>(4, false));
  EXPECT_EQ(pl.replicas(h), std::vector<NodeId>{node_id(pl.home(h))});
  EXPECT_TRUE(pl.is_replica(pl.home(h), node_id(pl.home(h))));
}

// ---------------------------------------------------------------------------
// Write fan-out: one monitor epoch lands every (hash, entity) pair on every
// group member, not just the primary.
// ---------------------------------------------------------------------------

TEST(ReplicaFanout, ScanPopulatesEveryGroupMember) {
  auto c = make_cluster(6, 3, 31);
  const auto ids = populate(*c, 1);
  const hash::BlockHasher hasher(c->params().hash_algorithm);
  for (const EntityId id : ids) {
    const mem::MemoryEntity& e = c->entity(id);
    for (BlockIndex b = 0; b < e.num_blocks(); ++b) {
      const ContentHash h = hasher(e.block(b));
      const std::vector<NodeId> group = c->placement().replicas(h);
      ASSERT_EQ(group.size(), 3u);
      for (const NodeId member : group) {
        EXPECT_TRUE(c->daemon(member).store().contains(h, id))
            << "entity " << raw(id) << " hash missing at replica " << raw(member);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Failover reads: zero degraded answers through an owner crash at R = 3.
// ---------------------------------------------------------------------------

TEST(ReplicaFailover, ReadsStayOkThroughOwnerCrashAtRThree) {
  auto c = make_cluster(8, 3, 32);
  const auto ids = populate(*c, 1);
  services::ShardRecovery recovery(*c);
  services::ReplicaResync resync(*c);
  query::QueryEngine q(*c);
  const std::vector<ContentHash> hashes = sample_hashes(*c, ids[0]);
  ASSERT_FALSE(hashes.empty());

  std::uint64_t reads = 0, degraded = 0;
  auto sweep = [&]() {
    for (const ContentHash& h : hashes) {
      const query::NodewiseAnswer a = q.num_copies(node_id(0), h);
      ++reads;
      if (a.status != Status::kOk) ++degraded;
      EXPECT_GE(a.num_copies, 1u);  // never a stale-empty answer either
    }
  };

  sweep();                       // healthy
  c->fault().crash(node_id(3));  // owner of ~1/8 of the set, undetected
  sweep();                       // failover races detection
  (void)c->detect();             // remap + recovery + resync
  sweep();
  c->fault().heal_all();
  (void)c->detect();             // readmission
  (void)c->detect();             // stability; rejoiner streams back in
  sweep();

  EXPECT_EQ(degraded, 0u) << "of " << reads << " reads";
  // The crashed owner really was in some groups: failover had to happen.
  EXPECT_GT(c->metrics().counter_total("query", "read_failover"), 0u);
}

TEST(ReplicaFailover, SameScheduleAtROneDegrades) {
  // Control experiment: the identical schedule at R = 1 loses reads while
  // the crash is undetected — which is exactly what replication buys.
  auto c = make_cluster(8, 1, 32);
  const auto ids = populate(*c, 1);
  query::QueryEngine q(*c);
  const std::vector<ContentHash> hashes = sample_hashes(*c, ids[0]);

  c->fault().crash(node_id(3));
  std::uint64_t degraded = 0;
  for (const ContentHash& h : hashes) {
    if (q.num_copies(node_id(0), h).status != Status::kOk) ++degraded;
  }
  EXPECT_GT(degraded, 0u);
}

// ---------------------------------------------------------------------------
// Dirty-shard refusals: a replica that missed updates refuses reads and the
// query fails over to an in-sync member instead of returning stale data.
// ---------------------------------------------------------------------------

TEST(ReplicaDirty, RejoinedPrimaryRefusesUntilSyncedAndReadsFailOver) {
  auto c = make_cluster(4, 2, 33);
  const auto ids = populate(*c, 1);
  query::QueryEngine q(*c);
  const std::vector<ContentHash> all = sample_hashes(*c, ids[0], 64);

  // No ShardRecovery / ReplicaResync attached: when the crashed node
  // rejoins (store wiped) nothing re-syncs it, so its refusals — it is the
  // primary of its home shard again — are observable.
  c->fault().crash(node_id(1));
  (void)c->detect();
  c->fault().restart(node_id(1));
  (void)c->detect();

  std::vector<ContentHash> orphaned;  // hashes homed at the wiped rejoiner
  for (const ContentHash& h : all) {
    if (c->placement().home(h) == 1u) orphaned.push_back(h);
  }
  ASSERT_FALSE(orphaned.empty());
  ASSERT_EQ(c->placement().owner(orphaned[0]), node_id(1));  // primary again
  EXPECT_FALSE(c->daemon(node_id(1)).shard_insync(1));

  for (const ContentHash& h : orphaned) {
    const query::NodewiseAnswer a = q.num_copies(node_id(0), h);
    EXPECT_EQ(a.status, Status::kOk);
    EXPECT_GE(a.num_copies, 1u);  // served by the surviving in-sync member
  }
  EXPECT_GT(c->metrics().counter_total("query", "read_refused"), 0u);

  // A clean audit pass is the convergence oracle: it certifies (and if
  // needed repairs) every replica, releasing the dirty markers.
  services::DhtAudit audit(*c);
  (void)audit.run_to_convergence();
  EXPECT_TRUE(audit.run().clean());
  EXPECT_TRUE(c->daemon(node_id(1)).shard_insync(1));
}

// ---------------------------------------------------------------------------
// Recovery economics: at R > 1 ShardRecovery defers to the cheap resync
// stream whenever a donor survives; at R = 1 it must republish.
// ---------------------------------------------------------------------------

TEST(ReplicaRecovery, SurvivingDonorTurnsRepublishIntoSkip) {
  auto c3 = make_cluster(6, 3, 34);
  (void)populate(*c3, 1);
  services::ShardRecovery rec3(*c3);
  services::ReplicaResync resync(*c3);
  c3->fault().crash(node_id(2));
  (void)c3->detect();
  EXPECT_GT(rec3.last_report().skipped_replicated, 0u);
  EXPECT_EQ(rec3.last_report().republished, 0u)
      << "every changed group kept an alive in-sync donor";
  EXPECT_GT(resync.last_report().shards_synced, 0u);
  EXPECT_GT(c3->metrics().counter_total("dht", "recovery_skipped_replicated"), 0u);

  auto c1 = make_cluster(6, 1, 34);
  (void)populate(*c1, 1);
  services::ShardRecovery rec1(*c1);
  c1->fault().crash(node_id(2));
  (void)c1->detect();
  EXPECT_GT(rec1.last_report().republished, 0u);
  EXPECT_EQ(rec1.last_report().skipped_replicated, 0u);
}

// ---------------------------------------------------------------------------
// Resync convergence: loss + a second crash mid-schedule, then audit clean.
// ---------------------------------------------------------------------------

TEST(ReplicaResyncConvergence, LossAndSecondCrashStillConvergeToCleanAudit) {
  auto c = make_cluster(8, 3, 35, /*loss=*/0.05);
  (void)populate(*c, 1);
  services::ShardRecovery recovery(*c);
  services::ReplicaResync resync(*c);

  c->fault().crash(node_id(3));
  (void)c->detect();             // first resync runs (lossy, may miss chunks)
  c->fault().crash(node_id(6));  // second failure while state is still settling
  (void)c->detect();
  c->fault().heal_all();
  (void)c->detect();
  (void)c->detect();

  services::DhtAudit audit(*c);
  (void)audit.run_to_convergence();  // repairs accumulate under 5% loss
  EXPECT_TRUE(audit.run().clean());  // and converge: one more pass is clean
  // The clean pass released every dirty marker on every audited daemon.
  for (std::uint32_t n = 0; n < c->num_nodes(); ++n) {
    EXPECT_TRUE(c->daemon(node_id(n)).dirty_shards().empty()) << "node " << n;
  }
}

TEST(ReplicaAudit, FaultFreeRunAtRThreeIsCleanWithBalancedReplication) {
  auto c = make_cluster(6, 3, 36);
  (void)populate(*c, 1);
  services::DhtAudit audit(*c);
  const services::AuditReport r = audit.run();
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.under_replicated, 0u);
  EXPECT_EQ(r.over_replicated, 0u);
}

// ---------------------------------------------------------------------------
// R = 1 byte-identity: the replication machinery must be invisible — same
// metric bytes, same causal trace, same virtual clock — at any sim_workers
// count, with or without a ReplicaResync service constructed.
// ---------------------------------------------------------------------------

struct RunFingerprint {
  std::string metrics;
  std::string trace;
  sim::Time now = 0;
};

RunFingerprint r1_fingerprint(std::size_t workers, bool with_resync) {
  core::ClusterParams p;
  p.num_nodes = 6;
  p.max_entities = 64;
  p.seed = 909;
  p.dht_replication = 1;
  p.fabric.loss_rate = 0.05;
  p.trace_propagation = true;
  p.sim_workers = workers;
  auto c = std::make_unique<core::Cluster>(p);
  std::unique_ptr<services::ReplicaResync> resync;
  if (with_resync) resync = std::make_unique<services::ReplicaResync>(*c);
  const auto ids = populate(*c, 1, 24);
  for (int round = 0; round < 4; ++round) {
    for (const EntityId id : ids) {
      workload::mutate(c->entity(id), 0.5,
                       static_cast<std::uint64_t>(round) * 131 + raw(id));
    }
    if (round == 1) c->fault().crash(node_id(2));
    if (round == 2) c->fault().heal_all();
    (void)c->scan_all();
    (void)c->detect();
  }
  return RunFingerprint{c->metrics().to_json(), c->tracer().to_chrome_json(),
                        c->sim().now()};
}

TEST(ReplicaByteIdentity, ROneRunsIdenticalAcrossWorkersAndWithResyncAttached) {
  const RunFingerprint base = r1_fingerprint(1, /*with_resync=*/false);
  EXPECT_GT(base.now, 0u);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const RunFingerprint f = r1_fingerprint(workers, /*with_resync=*/false);
    EXPECT_EQ(base.metrics, f.metrics) << workers << " workers";
    EXPECT_EQ(base.trace, f.trace) << workers << " workers";
    EXPECT_EQ(base.now, f.now) << workers << " workers";
  }
  // A ReplicaResync constructed at R = 1 is a pure no-op: no lazy metric
  // cells, no traffic, no clock movement.
  const RunFingerprint with = r1_fingerprint(1, /*with_resync=*/true);
  EXPECT_EQ(base.metrics, with.metrics);
  EXPECT_EQ(base.trace, with.trace);
  EXPECT_EQ(base.now, with.now);
}

}  // namespace
}  // namespace concord
