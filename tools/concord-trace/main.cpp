// concord-trace: offline analyzer for the tracer's Chrome trace exports.
//
// Usage:
//   concord-trace <trace.json>            report: per-command phase breakdown,
//                                         fan-out, critical path, flow health
//   concord-trace --check <trace.json>    structural self-check; exit 1 if the
//                                         trace has defects (unpaired async
//                                         events, flow finishes without starts,
//                                         commands with no phases, ...)
//   concord-trace --diff <a.json> <b.json> compare two traces of the same
//                                         workload: per-phase latency deltas,
//                                         message-count deltas
//
// Thin shell over obs::trace::analyze — all reconstruction logic lives in the
// library so tests and CI exercise the same code path as this binary.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "obs/trace_analysis.hpp"

namespace {

using concord::Result;
using concord::Status;
using concord::obs::trace::Analysis;

int usage() {
  std::fprintf(stderr,
               "usage: concord-trace <trace.json>\n"
               "       concord-trace --check <trace.json>\n"
               "       concord-trace --diff <a.json> <b.json>\n");
  return 2;
}

/// Reads a whole file; empty optional-style signalling via Status.
Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::kNotFound;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Result<Analysis> load(const std::string& path) {
  Result<std::string> text = read_file(path);
  if (!text) {
    std::fprintf(stderr, "concord-trace: cannot read %s\n", path.c_str());
    return text.status();
  }
  Result<Analysis> a = concord::obs::trace::analyze_text(text.value());
  if (!a) {
    std::fprintf(stderr, "concord-trace: %s is not a Chrome trace (%.*s)\n",
                 path.c_str(),
                 static_cast<int>(concord::to_string(a.status()).size()),
                 concord::to_string(a.status()).data());
  }
  return a;
}

int run_report(const std::string& path) {
  Result<Analysis> a = load(path);
  if (!a) return 1;
  std::fputs(concord::obs::trace::report(a.value()).c_str(), stdout);
  return 0;
}

int run_check(const std::string& path) {
  Result<Analysis> a = load(path);
  if (!a) return 1;
  const Analysis& an = a.value();
  for (const std::string& p : an.problems) {
    std::fprintf(stderr, "concord-trace: defect: %s\n", p.c_str());
  }
  std::printf("%s: %zu events, %zu commands, %zu/%zu flows matched, %zu defects\n",
              path.c_str(), an.events, an.commands.size(), an.flows_matched,
              an.flow_starts, an.problems.size());
  return an.problems.empty() ? 0 : 1;
}

int run_diff(const std::string& pa, const std::string& pb) {
  Result<Analysis> a = load(pa);
  if (!a) return 1;
  Result<Analysis> b = load(pb);
  if (!b) return 1;
  std::fputs(concord::obs::trace::diff(a.value(), b.value()).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view mode = argv[1];
  if (mode == "--check") {
    if (argc != 3) return usage();
    return run_check(argv[2]);
  }
  if (mode == "--diff") {
    if (argc != 4) return usage();
    return run_diff(argv[2], argv[3]);
  }
  if (mode.size() >= 2 && mode.substr(0, 2) == "--") return usage();
  if (argc != 2) return usage();
  return run_report(argv[1]);
}
