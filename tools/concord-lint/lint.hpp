// Shared model for concord-lint: findings, suppressions, the tokenized
// source-file representation, and the scanning helpers every pass uses.
// main.cpp hosts the per-file rules (D1–D5) and the driver; proto.cpp hosts
// the cross-TU protocol/metric passes (W1/W2, `--proto`).
#pragma once

#include <algorithm>
#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace lint {

// ---------------------------------------------------------------------------
// Findings & suppressions

enum class Rule {
  kDeterminism,        // D1
  kUnorderedEmit,      // D2
  kStatus,             // D3
  kAlloc,              // D4
  kGuarded,            // D5
  kProtoWire,          // W1
  kProtoMetric,        // W2
  kUnusedSuppression,
};

inline const char* rule_name(Rule r) {
  switch (r) {
    case Rule::kDeterminism: return "concord-determinism";
    case Rule::kUnorderedEmit: return "concord-unordered-emit";
    case Rule::kStatus: return "concord-status";
    case Rule::kAlloc: return "concord-alloc";
    case Rule::kGuarded: return "concord-guarded";
    case Rule::kProtoWire: return "concord-proto-wire";
    case Rule::kProtoMetric: return "concord-proto-metric";
    case Rule::kUnusedSuppression: return "concord-unused-suppression";
  }
  return "concord-unknown";
}

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based
  std::size_t col = 0;   // 1-based; 0 = whole-line finding
  Rule rule = Rule::kDeterminism;
  std::string message;
  bool warning = false;  // warnings still fail the run; the label differs
  // For kUnusedSuppression: the rule id the stale annotation would suppress.
  std::string suppressed_rule;
};

/// One `NOLINT(concord-*)` / `NOLINTNEXTLINE(concord-*)` / `concord-lint:
/// sorted` annotation, tracked so unused suppressions can be reported.
struct Suppression {
  std::size_t line = 0;      // line the comment sits on (1-based)
  std::size_t covers = 0;    // line whose findings it suppresses
  std::string rule;          // "concord-determinism", ... or "sorted"
  bool used = false;
};

// ---------------------------------------------------------------------------
// Source model: a comment/string-blanked twin used by token scanners, a
// comment-blanked (strings kept) twin used by the proto passes, and the
// per-line comment text used by the annotation grammar.

struct SourceFile {
  std::string path;                     // as reported
  std::string code;                     // comments & literals blanked
  std::string code_str;                 // comments blanked, strings kept
  std::vector<std::string> comments;    // comment text per line (1-based)
  std::vector<std::size_t> line_start;  // offset of each line in `code`
  std::vector<Suppression> suppressions;
  bool emit_path = false;      // file carries `// concord-lint: emit-path`
  bool guarded_scope = false;  // file carries `// concord-lint: guarded-scope`

  [[nodiscard]] std::size_t line_of(std::size_t offset) const {
    const auto it = std::upper_bound(line_start.begin(), line_start.end(), offset);
    return static_cast<std::size_t>(it - line_start.begin());
  }
  /// 1-based column of `offset` on its line.
  [[nodiscard]] std::size_t col_of(std::size_t offset) const {
    const std::size_t ln = line_of(offset);
    return offset - line_start[ln - 1] + 1;
  }
  /// True if the code between the line's start and end is all whitespace
  /// (the line holds only comment text, or nothing).
  [[nodiscard]] bool code_blank(std::size_t ln) const {
    if (ln == 0 || ln > line_start.size()) return true;
    const std::size_t b = line_start[ln - 1];
    const std::size_t e = ln < line_start.size() ? line_start[ln] : code.size();
    for (std::size_t i = b; i < e; ++i) {
      if (std::isspace(static_cast<unsigned char>(code[i])) == 0) return false;
    }
    return true;
  }
};

SourceFile load_source(const std::string& path, const std::string& text);

/// True (and marks the suppression used) if `rule` is suppressed at `line`.
bool suppressed(SourceFile& src, std::size_t line, Rule rule);

/// Reads `path` into `text`; false on IO error.
bool read_file(const std::string& path, std::string& text);

/// Reports suppressions that never fired. Each mode judges only the rules it
/// ran: proto mode sees `concord-proto-*` annotations, normal mode the rest.
void report_unused_suppressions(const SourceFile& src, bool proto_mode,
                                std::vector<Finding>& out);

// ---------------------------------------------------------------------------
// Scanning helpers over blanked code buffers.

inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

inline std::size_t skip_ws_fwd(const std::string& code, std::size_t i) {
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
  return i;
}

/// Index of the last non-whitespace char before `i`, or npos.
inline std::size_t prev_sig(const std::string& code, std::size_t i) {
  while (i > 0) {
    --i;
    if (std::isspace(static_cast<unsigned char>(code[i])) == 0) return i;
  }
  return std::string::npos;
}

/// With code[i] == open, returns the index just past the matching closer.
inline std::size_t skip_balanced(const std::string& code, std::size_t i, char open,
                                 char close) {
  int depth = 0;
  for (; i < code.size(); ++i) {
    if (code[i] == open) ++depth;
    else if (code[i] == close && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Start index of the identifier ending at (and including) `end`.
inline std::size_t ident_begin(const std::string& code, std::size_t end) {
  std::size_t b = end;
  while (b > 0 && ident_char(code[b - 1])) --b;
  return b;
}

inline bool word_at(const std::string& code, std::size_t i, std::string_view word) {
  if (code.compare(i, word.size(), word) != 0) return false;
  if (i > 0 && ident_char(code[i - 1])) return false;
  const std::size_t after = i + word.size();
  return after >= code.size() || !ident_char(code[after]);
}

inline bool path_matches(const std::string& path, std::string_view pat) {
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  return norm.find(pat) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Cross-TU protocol & metric passes (proto.cpp). Loads its own file set
// under `root` (src/**, tests/test_codec.cpp, EXPERIMENTS.md) and appends
// findings; `files_scanned` reports the set size for the summary line.

void run_proto(const std::string& root, std::vector<Finding>& out,
               std::size_t& files_scanned);

}  // namespace lint
