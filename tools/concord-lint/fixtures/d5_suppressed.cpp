// Fixture: every mutex-adjacent member is annotated, justified, or
// suppressed — D5 stays quiet.
// concord-lint: guarded-scope
#include <mutex>

#define CONCORD_GUARDED_BY(x)

class JobQueue {
 public:
  void push(int v);

 private:
  std::mutex mu_;
  int depth_ CONCORD_GUARDED_BY(mu_) = 0;
  int epoch_ = 0;  // NOLINT(concord-guarded)
  // concord-lint: unguarded(owner-thread only; workers never touch it)
  int owner_scratch_ = 0;
};

// A class without a mutex never triggers D5, annotated or not.
class PlainBag {
  int a_ = 0;
  int b_ = 0;
};
