// Fixture: a dead metric read, suppressed at the site.
struct Registry {
  int& counter(const char* sub, const char* name);
  unsigned counter_total(const char* sub, const char* name) const;
};

void observe(Registry& r) {
  r.counter("core", "ticks");
  // NOLINTNEXTLINE(concord-proto-metric)
  (void)r.counter_total("core", "tocks");
}
