// Fixture: the same orphaned-handler drift as proto_bad, but every finding
// carries a NOLINT for its rule — the proto pass exits clean.
#pragma once

namespace fix::net {

enum class MsgType : int {
  kPing,
  kOrphan,
};

constexpr const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kPing: return "ping";
    case MsgType::kOrphan: return "orphan";
  }
  return "unknown";
}

inline constexpr int kNumMsgTypes = static_cast<int>(MsgType::kOrphan) + 1;

constexpr bool is_control_plane(MsgType) { return false; }

enum class MsgDispatch { kDaemonSwitch, kHandler, kSink };

struct MsgTypeBinding {
  MsgType type;
  const char* codec_struct;
  bool control_plane;
  MsgDispatch dispatch;
};

inline constexpr MsgTypeBinding kMsgTypeBindings[] = {
    {MsgType::kPing, "", false, MsgDispatch::kHandler},    // NOLINT(concord-proto-wire)
    {MsgType::kOrphan, "", false, MsgDispatch::kHandler},  // NOLINT(concord-proto-wire)
};

}  // namespace fix::net
