// Fixture: D1 suppressed — same sites, justified NOLINTs.
#include <chrono>
#include <cstdlib>

long long sample_wall_clock() {
  // Host-side calibration: real time is the quantity being measured.
  const auto t = std::chrono::steady_clock::now();  // NOLINT(concord-determinism)
  // NOLINTNEXTLINE(concord-determinism)
  return t.time_since_epoch().count() + rand();
}
