// Fixture: D4 positive — raw new and malloc outside the pool allocator.
#include <cstdlib>

int* make_buffer(unsigned n) {
  void* scratch = std::malloc(n);
  std::free(scratch);
  return new int[n];
}
