// Fixture: a mutex-holding class with an unannotated data member.
// concord-lint: guarded-scope
#include <mutex>

#define CONCORD_GUARDED_BY(x)

class JobQueue {
 public:
  void push(int v);

 private:
  std::mutex mu_;
  int depth_ CONCORD_GUARDED_BY(mu_) = 0;
  int epoch_ = 0;  // unguarded, unjustified -> D5 fires here
  // concord-lint: unguarded(owner-thread only; workers never touch it)
  int owner_scratch_ = 0;
  const int capacity_ = 64;
  static int instances_;
};
