// Fixture: D2 suppressed — the loop only accumulates a sum, so hash order
// cannot leak into the emitted bytes.
// concord-lint: emit-path
#include <unordered_map>

long long total(const std::unordered_map<int, long long>& cells) {
  long long sum = 0;
  // concord-lint: sorted — order-independent reduction, nothing is emitted per element
  for (const auto& [k, v] : cells) {
    sum += v;
  }
  return sum;
}
