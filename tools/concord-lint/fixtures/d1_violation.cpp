// Fixture: D1 positive — wall clock + libc RNG outside the allowlist.
#include <chrono>
#include <cstdlib>

long long sample_wall_clock() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count() + rand();
}
