// Fixture: clean file — ordered emit, consumed Status, no banned sources.
// concord-lint: emit-path
#include <map>
#include <string>

enum class Status { kOk, kNotFound };

Status flush_shard(int shard);

std::string snapshot(const std::map<int, int>& cells) {
  std::string out;
  for (const auto& [k, v] : cells) {
    out += std::to_string(k) + "=" + std::to_string(v) + "\n";
  }
  if (flush_shard(0) != Status::kOk) out += "flush failed\n";
  return out;
}

Status flush_shard(int shard) { return shard >= 0 ? Status::kOk : Status::kNotFound; }
