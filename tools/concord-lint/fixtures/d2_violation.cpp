// Fixture: D2 positive — unordered iteration in an emit-path file.
// concord-lint: emit-path
#include <string>
#include <unordered_map>

std::string snapshot(const std::unordered_map<int, int>& cells) {
  std::string out;
  for (const auto& [k, v] : cells) {
    out += std::to_string(k) + "=" + std::to_string(v) + "\n";
  }
  return out;
}
