// Fixture: D3 positive — Status-returning call with the value dropped.
enum class Status { kOk, kNotFound };

Status flush_shard(int shard);

void tick(int shard, bool urgent) {
  if (urgent) flush_shard(shard);
  flush_shard(shard + 1);
}

Status flush_shard(int shard) { return shard >= 0 ? Status::kOk : Status::kNotFound; }
