// Fixture: D3 suppressed — one visible (void) drop, one NOLINT.
enum class Status { kOk, kNotFound };

Status flush_shard(int shard);

void tick(int shard) {
  // Best-effort flush: a miss here is retried on the next tick.
  (void)flush_shard(shard);
  flush_shard(shard + 1);  // NOLINT(concord-status) — fire-and-forget warmup
}

Status flush_shard(int shard) { return shard >= 0 ? Status::kOk : Status::kNotFound; }
