// Fixture: D4 suppressed — justified raw allocation (FFI handoff).
#include <cstdlib>

int* make_buffer(unsigned n) {
  // Caller is C code that frees with free(); the pool cannot own this.
  void* scratch = std::malloc(n);  // NOLINT(concord-alloc)
  std::free(scratch);              // NOLINT(concord-alloc)
  // NOLINTNEXTLINE(concord-alloc) — ownership crosses the FFI boundary
  return new int[n];
}
