// Fixture: suppressions that never fire are themselves findings.
// concord-lint: emit-path
#include <map>

int identity(int x) { return x; }  // NOLINT(concord-determinism)

long long total(const std::map<int, long long>& cells) {
  long long sum = 0;
  // concord-lint: sorted — std::map is already ordered; the note is stale
  for (const auto& [k, v] : cells) {
    sum += v;
  }
  return sum;
}
