// Fixture: a fully-wired protocol header — W1 and W2 stay quiet.
#pragma once

namespace fix::net {

enum class MsgType : int {
  kPing,
  kPong,
  kNoise,  // modeled wire volume only, deliberately unhandled
};

constexpr const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kNoise: return "noise";
  }
  return "unknown";
}

inline constexpr int kNumMsgTypes = static_cast<int>(MsgType::kNoise) + 1;

constexpr bool is_control_plane(MsgType t) { return t == MsgType::kPong; }

enum class MsgDispatch { kDaemonSwitch, kHandler, kSink };

struct MsgTypeBinding {
  MsgType type;
  const char* codec_struct;
  bool control_plane;
  MsgDispatch dispatch;
};

inline constexpr MsgTypeBinding kMsgTypeBindings[] = {
    {MsgType::kPing, "", false, MsgDispatch::kDaemonSwitch},
    {MsgType::kPong, "", true, MsgDispatch::kHandler},
    {MsgType::kNoise, "", false, MsgDispatch::kSink},
};

}  // namespace fix::net
