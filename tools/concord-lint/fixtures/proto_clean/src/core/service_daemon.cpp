// Fixture daemon: every binding-table dispatch claim has its site.
#include "net/message.hpp"

namespace fix::core {

struct Handler {
  void set_handler(net::MsgType type, int slot);
};

int handle_message(net::MsgType t) {
  switch (t) {
    case net::MsgType::kPing: return 1;
    default: return 0;
  }
}

void wire(Handler& h) {
  h.set_handler(net::MsgType::kPong, 3);
}

struct Registry {
  int& counter(const char* sub, const char* name);
  unsigned counter_total(const char* sub, const char* name) const;
};

struct Key {
  const char* name;
};

void observe(Registry& r, const Key& k) {
  r.counter("core", "ticks");
  (void)r.counter_total("core", "ticks");
  if (k.name == "ticks") {
    r.counter("core", "ticks");
  }
}

}  // namespace fix::core
