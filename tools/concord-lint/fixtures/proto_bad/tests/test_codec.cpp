// Fixture codec tests: covers a struct nobody binds, not the one kPing
// claims — the Ping fixture is missing.
CONCORD_TRUNC_FIXTURE(Unrelated, decode_unrelated, Unrelated{});
