// Fixture: a protocol header seeded with every class of W1 drift.
#pragma once

namespace fix::net {

enum class MsgType : int {
  kPing,    // claims a codec struct that has no legs anywhere
  kPong,    // control-plane flag disagrees with the binding row
  kOrphan,  // claims kHandler dispatch but nothing registers one
};

constexpr const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    // kOrphan has no case: labels fall through to "unknown".
  }
  return "unknown";
}

// Anchored on kPong although kOrphan is the last enumerator.
inline constexpr int kNumMsgTypes = static_cast<int>(MsgType::kPong) + 1;

constexpr bool is_control_plane(MsgType t) { return t == MsgType::kPong; }

enum class MsgDispatch { kDaemonSwitch, kHandler, kSink };

struct MsgTypeBinding {
  MsgType type;
  const char* codec_struct;
  bool control_plane;
  MsgDispatch dispatch;
};

inline constexpr MsgTypeBinding kMsgTypeBindings[] = {
    {MsgType::kPing, "Ping", false, MsgDispatch::kDaemonSwitch},
    {MsgType::kPong, "", false, MsgDispatch::kHandler},
    {MsgType::kOrphan, "", false, MsgDispatch::kHandler},
};

}  // namespace fix::net
