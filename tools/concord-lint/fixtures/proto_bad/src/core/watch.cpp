// Fixture metrics: a kind clash, a dead counter_total read, and a dead
// metric-name comparison.
struct Registry {
  int& counter(const char* sub, const char* name);
  int& gauge(const char* sub, const char* name);
  unsigned counter_total(const char* sub, const char* name) const;
};

struct Key {
  const char* name;
};

void observe(Registry& r, const Key& k) {
  r.counter("core", "ticks");
  r.gauge("core", "ticks");  // same cell, different kind
  (void)r.counter_total("core", "tocks");  // never created anywhere
  if (k.name == "nope") {  // no cell carries this name
    r.counter("core", "ticks");
  }
}
