// Fixture daemon: dispatches kPong (which the binding table claims is
// handler-dispatched) and has no case for kPing (which claims the switch).
#include "net/message.hpp"

namespace fix::core {

struct Handler {
  void set_handler(net::MsgType type, int slot);  // declaration, not a site
};

int handle_message(net::MsgType t) {
  switch (t) {
    case net::MsgType::kPong: return 1;
    default: return 0;
  }
}

void wire(Handler& h) {
  h.set_handler(net::MsgType::kPong, 3);
}

}  // namespace fix::core
