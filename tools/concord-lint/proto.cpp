// concord-lint --proto: cross-TU wire-protocol (W1) and metric-namespace (W2)
// consistency passes.
//
// W1 (concord-proto-wire) reads the protocol ground truth out of
// src/net/message.hpp — the MsgType enum, the kNumMsgTypes anchor, the
// to_string/is_control_plane functions, and the kMsgTypeBindings table — and
// verifies every leg the rest of the tree owes each message type:
//
//   * a kMsgTypeBindings row whose control_plane flag matches
//     is_control_plane() and whose to_string case exists,
//   * for rows naming a codec struct: an encode(const S&...) overload and a
//     Result<S> decode_*() declared in net/codec.hpp AND defined in
//     net/codec.cpp, plus a CONCORD_TRUNC_FIXTURE(S...) truncation-fuzz
//     fixture in tests/test_codec.cpp,
//   * a dispatch site matching the row's claim: a `case MsgType::kX` in
//     core/service_daemon.cpp (kDaemonSwitch), a set_handler(MsgType::kX...)
//     registration anywhere in src (kHandler), or — for kSink — neither,
//   * per-type tables in net/fabric.hpp sized by kNumMsgTypes, and a
//     kMaxWireType constant matching the largest WireType enumerator.
//
// W2 (concord-proto-metric) builds the catalog of every obs::Registry cell
// the tree creates — counter("sub", "name") literals, "prefix." + expr
// families, and `// concord-proto: cell <kind> <sub>/<name|prefix*>`
// declarations for names computed at runtime — plus the span catalog from
// begin_span/begin_async, then checks every reference against it:
//
//   * the same (subsystem, name) never created with two kinds,
//   * counter_total/gauge_total literals resolve to a live cell of that kind,
//   * `.name ==` / `.name !=` string comparisons name a live metric (or, in
//     obs/trace_analysis.cpp, a live span),
//   * metric tokens in EXPERIMENTS.md (`sub/name`) name live cells,
//   * dynamic-name creation sites carry a `concord-proto: cell` declaration.
//
// Findings anchor to the offending site (or the enum line for missing legs)
// and respect NOLINT(concord-proto-wire|concord-proto-metric).

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace lint {
namespace {

namespace fs = std::filesystem;

struct ProtoTree {
  std::vector<SourceFile> files;  // every source loaded for the pass
  SourceFile* message = nullptr;  // src/net/message.hpp
  SourceFile* codec_hpp = nullptr;
  SourceFile* codec_cpp = nullptr;
  SourceFile* fabric_hpp = nullptr;
  SourceFile* daemon_cpp = nullptr;  // core/service_daemon.cpp
  SourceFile* test_codec = nullptr;  // tests/test_codec.cpp
  std::string experiments;           // EXPERIMENTS.md text ("" if absent)
};

void push(ProtoTree& tree, SourceFile&& f) { tree.files.push_back(std::move(f)); }

bool load_tree(const std::string& root, ProtoTree& tree) {
  std::vector<std::string> paths;
  for (const char* sub : {"src", "bench", "examples"}) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
        paths.push_back(entry.path().string());
      }
    }
  }
  const fs::path tc = fs::path(root) / "tests" / "test_codec.cpp";
  if (fs::exists(tc)) paths.push_back(tc.string());
  std::sort(paths.begin(), paths.end());
  for (const std::string& p : paths) {
    std::string text;
    if (!read_file(p, text)) return false;
    push(tree, load_source(p, text));
  }
  for (SourceFile& f : tree.files) {
    if (path_matches(f.path, "net/message.hpp")) tree.message = &f;
    if (path_matches(f.path, "net/codec.hpp")) tree.codec_hpp = &f;
    if (path_matches(f.path, "net/codec.cpp")) tree.codec_cpp = &f;
    if (path_matches(f.path, "net/fabric.hpp")) tree.fabric_hpp = &f;
    if (path_matches(f.path, "core/service_daemon.cpp")) tree.daemon_cpp = &f;
    if (path_matches(f.path, "tests/test_codec.cpp")) tree.test_codec = &f;
  }
  std::string md;
  if (read_file((fs::path(root) / "EXPERIMENTS.md").string(), md)) {
    tree.experiments = std::move(md);
  }
  return true;
}

void report(SourceFile& src, std::size_t offset, Rule rule, std::string msg,
            std::vector<Finding>& out) {
  const std::size_t line = src.line_of(offset);
  if (suppressed(src, line, rule)) return;
  out.push_back({src.path, line, src.col_of(offset), rule, std::move(msg), false, {}});
}

/// Reads a plain (escape-free) string literal starting at code_str[i] == '"'.
/// Returns false if it isn't one. `end` is set one past the closing quote.
bool read_literal(const std::string& s, std::size_t i, std::string& out,
                  std::size_t& end) {
  if (i >= s.size() || s[i] != '"') return false;
  const std::size_t close = s.find('"', i + 1);
  if (close == std::string::npos) return false;
  out = s.substr(i + 1, close - i - 1);
  end = close + 1;
  return true;
}

/// After `(`-relative scanning: expects optional `net::` / `obs::` qualifiers
/// then `Word::kIdent`; returns the identifier (e.g. "kDhtInsert") or "".
std::string scoped_enumerator(const std::string& s, std::size_t i, std::string_view word) {
  i = skip_ws_fwd(s, i);
  if (s.compare(i, 5, "net::") == 0) i = skip_ws_fwd(s, i + 5);
  if (s.compare(i, word.size(), word) != 0) return "";
  i += word.size();
  i = skip_ws_fwd(s, i);
  if (s.compare(i, 2, "::") != 0) return "";
  i = skip_ws_fwd(s, i + 2);
  const std::size_t b = i;
  while (i < s.size() && ident_char(s[i])) ++i;
  return s.substr(b, i - b);
}

// ---------------------------------------------------------------------------
// W1 — wire-protocol exhaustiveness.

struct BindingRow {
  std::string enumerator;
  std::string codec_struct;
  bool control_plane = false;
  std::string dispatch;  // kDaemonSwitch | kHandler | kSink
  std::size_t offset = 0;
};

std::vector<std::pair<std::string, std::size_t>> parse_enumerators(const SourceFile& src) {
  std::vector<std::pair<std::string, std::size_t>> out;
  const std::string& code = src.code;
  std::size_t at = code.find("enum class MsgType");
  if (at == std::string::npos) return out;
  const std::size_t open = code.find('{', at);
  if (open == std::string::npos) return out;
  const std::size_t past = skip_balanced(code, open, '{', '}');
  if (past == std::string::npos) return out;
  for (std::size_t i = open + 1; i < past - 1;) {
    i = skip_ws_fwd(code, i);
    if (i >= past - 1) break;
    if (ident_char(code[i])) {
      const std::size_t b = i;
      while (i < past - 1 && ident_char(code[i])) ++i;
      out.emplace_back(code.substr(b, i - b), b);
      // Skip to the enumerator's comma (past any `= value`).
      while (i < past - 1 && code[i] != ',') ++i;
      ++i;
    } else {
      ++i;
    }
  }
  return out;
}

std::vector<BindingRow> parse_binding_rows(const SourceFile& src) {
  std::vector<BindingRow> rows;
  const std::string& s = src.code_str;
  std::size_t at = s.find("kMsgTypeBindings[]");
  if (at == std::string::npos) return rows;
  const std::size_t open = s.find('{', at);
  if (open == std::string::npos) return rows;
  const std::size_t past = skip_balanced(s, open, '{', '}');
  if (past == std::string::npos) return rows;
  for (std::size_t i = open + 1; i < past - 1;) {
    i = skip_ws_fwd(s, i);
    if (i >= past - 1 || s[i] != '{') {
      ++i;
      continue;
    }
    const std::size_t row_end = skip_balanced(s, i, '{', '}');
    if (row_end == std::string::npos) break;
    BindingRow row;
    row.offset = i;
    row.enumerator = scoped_enumerator(s, i + 1, "MsgType");
    std::size_t j = s.find(',', i);
    if (j != std::string::npos && j < row_end) {
      j = skip_ws_fwd(s, j + 1);
      std::size_t lit_end = 0;
      read_literal(s, j, row.codec_struct, lit_end);
    }
    row.control_plane = [&] {
      const std::size_t t = s.find("true", i);
      const std::size_t f = s.find("false", i);
      return t != std::string::npos && t < row_end && (f == std::string::npos || t < f);
    }();
    const std::size_t d = s.find("MsgDispatch::", i);
    if (d != std::string::npos && d < row_end) {
      std::size_t b = d + std::string_view("MsgDispatch::").size();
      std::size_t e = b;
      while (e < row_end && ident_char(s[e])) ++e;
      row.dispatch = s.substr(b, e - b);
    }
    if (!row.enumerator.empty()) rows.push_back(std::move(row));
    i = row_end;
  }
  return rows;
}

/// Enumerators mentioned as `MsgType::kX` inside the body of `fn_name`.
std::set<std::string> enumerators_in_function(const SourceFile& src,
                                              std::string_view fn_name) {
  std::set<std::string> out;
  const std::string& code = src.code;
  std::size_t at = code.find(fn_name);
  while (at != std::string::npos && !word_at(code, at, fn_name)) {
    at = code.find(fn_name, at + 1);
  }
  if (at == std::string::npos) return out;
  const std::size_t open = code.find('{', at);
  if (open == std::string::npos) return out;
  const std::size_t past = skip_balanced(code, open, '{', '}');
  if (past == std::string::npos) return out;
  for (std::size_t i = code.find("MsgType::", open); i != std::string::npos && i < past;
       i = code.find("MsgType::", i + 1)) {
    std::size_t b = i + std::string_view("MsgType::").size();
    std::size_t e = b;
    while (e < code.size() && ident_char(code[e])) ++e;
    if (e > b) out.insert(code.substr(b, e - b));
  }
  return out;
}

std::set<std::string> collect_case_sites(const SourceFile& src) {
  std::set<std::string> out;
  const std::string& code = src.code;
  for (std::size_t at = code.find("case"); at != std::string::npos;
       at = code.find("case", at + 4)) {
    if (!word_at(code, at, "case")) continue;
    const std::string e = scoped_enumerator(code, at + 4, "MsgType");
    if (!e.empty()) out.insert(e);
  }
  return out;
}

void collect_handler_sites(const SourceFile& src, std::set<std::string>& out) {
  const std::string& code = src.code;
  for (std::size_t at = code.find("set_handler"); at != std::string::npos;
       at = code.find("set_handler", at + 11)) {
    if (!word_at(code, at, "set_handler")) continue;
    const std::size_t open = skip_ws_fwd(code, at + 11);
    if (open >= code.size() || code[open] != '(') continue;
    // Declarations (`set_handler(net::MsgType type, ...)`) have no `::k...`
    // after the type name, so scoped_enumerator returns "" for them.
    const std::string e = scoped_enumerator(code, open + 1, "MsgType");
    if (!e.empty()) out.insert(e);
  }
  return;
}

bool has_token(const SourceFile* src, const std::string& token) {
  if (src == nullptr) return false;
  const std::string& s = src->code_str;
  for (std::size_t at = s.find(token); at != std::string::npos;
       at = s.find(token, at + 1)) {
    if (at > 0 && ident_char(s[at - 1])) continue;
    return true;
  }
  return false;
}

void check_wire(ProtoTree& tree, std::vector<Finding>& out) {
  if (tree.message == nullptr) return;
  SourceFile& msg = *tree.message;
  const auto enumerators = parse_enumerators(msg);
  if (enumerators.empty()) {
    out.push_back({msg.path, 1, 0, Rule::kProtoWire,
                   "no `enum class MsgType` found; W1 has no ground truth", false, {}});
    return;
  }

  // kNumMsgTypes must anchor on the *last* enumerator.
  {
    const std::string& code = msg.code;
    const std::size_t at = code.find("kNumMsgTypes");
    if (at == std::string::npos) {
      report(msg, enumerators.front().second, Rule::kProtoWire,
             "kNumMsgTypes is not defined; per-type tables cannot be sized", out);
    } else {
      const std::string anchor = [&] {
        const std::size_t m = code.find("MsgType::", at);
        if (m == std::string::npos) return std::string();
        std::size_t b = m + std::string_view("MsgType::").size();
        std::size_t e = b;
        while (e < code.size() && ident_char(code[e])) ++e;
        return code.substr(b, e - b);
      }();
      if (anchor != enumerators.back().first) {
        report(msg, at, Rule::kProtoWire,
               "kNumMsgTypes anchors on MsgType::" + anchor + " but the last enumerator is " +
                   enumerators.back().first + "; every per-type table is now undersized",
               out);
      }
    }
  }

  // to_string must have a case per enumerator.
  for (const auto& [name, offset] : enumerators) {
    const std::string& code = msg.code;
    bool found = false;
    const std::string needle = "MsgType::" + name;
    for (std::size_t i = code.find(needle); i != std::string::npos;
         i = code.find(needle, i + 1)) {
      const std::size_t p = prev_sig(code, i);
      if (p == std::string::npos) continue;
      // `case MsgType::kX` (allow a `net::` qualifier in between).
      std::size_t q = p;
      if (code[q] == ':' && q > 0 && code[q - 1] == ':') {
        const std::size_t id = prev_sig(code, q - 1);
        if (id == std::string::npos || !ident_char(code[id])) continue;
        q = prev_sig(code, ident_begin(code, id));
        if (q == std::string::npos) continue;
      }
      if (ident_char(code[q]) &&
          code.compare(ident_begin(code, q), 4, "case") == 0) {
        found = true;
        break;
      }
    }
    if (!found) {
      report(msg, offset, Rule::kProtoWire,
             "MsgType::" + name + " has no `case` in to_string(); traffic accounting "
                 "will label it \"unknown\"",
             out);
    }
  }

  // Binding table: one row per enumerator, flags consistent.
  const std::vector<BindingRow> rows = parse_binding_rows(msg);
  const std::set<std::string> control_set = enumerators_in_function(msg, "is_control_plane");
  std::map<std::string, const BindingRow*> row_by_name;
  for (const BindingRow& r : rows) {
    if (!row_by_name.emplace(r.enumerator, &r).second) {
      report(msg, r.offset, Rule::kProtoWire,
             "duplicate kMsgTypeBindings row for MsgType::" + r.enumerator, out);
    }
  }
  std::set<std::string> daemon_cases;
  if (tree.daemon_cpp != nullptr) daemon_cases = collect_case_sites(*tree.daemon_cpp);
  std::set<std::string> handler_sites;
  for (SourceFile& f : tree.files) {
    if (path_matches(f.path, "tests/")) continue;
    collect_handler_sites(f, handler_sites);
  }

  for (const auto& [name, offset] : enumerators) {
    const auto it = row_by_name.find(name);
    if (it == row_by_name.end()) {
      report(msg, offset, Rule::kProtoWire,
             "MsgType::" + name + " has no kMsgTypeBindings row; the protocol table "
                 "no longer covers the enum",
             out);
      continue;
    }
    const BindingRow& row = *it->second;
    if (row.control_plane != (control_set.count(name) != 0)) {
      report(msg, row.offset, Rule::kProtoWire,
             "kMsgTypeBindings claims MsgType::" + name + (row.control_plane ? " is" : " is not") +
                 " control-plane but is_control_plane() disagrees; shedding will "
                 "misclassify it",
             out);
    }
    // Dispatch claims vs actual sites.
    const bool in_switch = daemon_cases.count(name) != 0;
    const bool in_handler = handler_sites.count(name) != 0;
    if (row.dispatch == "kDaemonSwitch") {
      if (!in_switch && tree.daemon_cpp != nullptr) {
        report(msg, row.offset, Rule::kProtoWire,
               "MsgType::" + name + " claims kDaemonSwitch dispatch but "
                   "ServiceDaemon::handle_message has no `case` for it; deliveries "
                   "count as core/unhandled_msgs",
               out);
      }
    } else if (row.dispatch == "kHandler") {
      if (!in_handler) {
        report(msg, row.offset, Rule::kProtoWire,
               "MsgType::" + name + " claims kHandler dispatch but no set_handler("
                   "MsgType::" + name + ") registration exists in src/",
               out);
      }
    } else if (row.dispatch == "kSink") {
      if (in_switch || in_handler) {
        report(msg, row.offset, Rule::kProtoWire,
               "MsgType::" + name + " claims kSink (deliberately unhandled) but a " +
                   (in_switch ? "daemon-switch case" : "set_handler registration") +
                   " exists; update the binding table",
               out);
      }
    } else {
      report(msg, row.offset, Rule::kProtoWire,
             "kMsgTypeBindings row for MsgType::" + name + " has no recognizable "
                 "MsgDispatch value",
             out);
    }
    // Dispatch sites that contradict the claimed mechanism.
    if (row.dispatch == "kDaemonSwitch" && in_handler) {
      report(msg, row.offset, Rule::kProtoWire,
             "MsgType::" + name + " claims kDaemonSwitch but also has a set_handler "
                 "registration; two dispatch paths for one type",
             out);
    }
    if (row.dispatch == "kHandler" && in_switch) {
      report(msg, row.offset, Rule::kProtoWire,
             "MsgType::" + name + " claims kHandler but also has a daemon-switch case; "
                 "two dispatch paths for one type",
             out);
    }

    // Codec legs for socket-crossing types.
    if (!row.codec_struct.empty()) {
      const std::string& s = row.codec_struct;
      const std::string enc = "encode(const " + s + "&";
      auto has_sub = [](const SourceFile* f, const std::string& needle) {
        return f != nullptr && f->code_str.find(needle) != std::string::npos;
      };
      const bool dec_hpp = [&] {
        if (tree.codec_hpp == nullptr) return false;
        const std::string& c = tree.codec_hpp->code_str;
        const std::size_t at = c.find("Result<" + s + ">");
        if (at == std::string::npos) return false;
        return c.find("decode_", at) != std::string::npos;
      }();
      const bool dec_cpp = [&] {
        if (tree.codec_cpp == nullptr) return false;
        const std::string& c = tree.codec_cpp->code_str;
        const std::size_t at = c.find("Result<" + s + ">");
        if (at == std::string::npos) return false;
        return c.find("decode_", at) != std::string::npos;
      }();
      if (!has_sub(tree.codec_hpp, enc) || !dec_hpp) {
        report(msg, row.offset, Rule::kProtoWire,
               "MsgType::" + name + " binds codec struct " + s + " but net/codec.hpp "
                   "does not declare both encode(const " + s + "&...) and a Result<" +
                   s + "> decode_*()",
               out);
      }
      if (!has_sub(tree.codec_cpp, enc) || !dec_cpp) {
        report(msg, row.offset, Rule::kProtoWire,
               "MsgType::" + name + " binds codec struct " + s + " but net/codec.cpp "
                   "does not define both codec legs",
               out);
      }
      if (tree.test_codec != nullptr &&
          !has_token(tree.test_codec, "CONCORD_TRUNC_FIXTURE(" + s)) {
        report(msg, row.offset, Rule::kProtoWire,
               "MsgType::" + name + " binds codec struct " + s + " but "
                   "tests/test_codec.cpp has no CONCORD_TRUNC_FIXTURE(" + s +
                   ", ...) truncation-fuzz fixture",
               out);
      }
    }
  }

  // Per-type tables in fabric.hpp must be sized by kNumMsgTypes.
  if (tree.fabric_hpp != nullptr) {
    SourceFile& fab = *tree.fabric_hpp;
    const std::string& code = fab.code;
    for (std::size_t at = code.find("type_cells_"); at != std::string::npos;
         at = code.find("type_cells_", at + 1)) {
      const std::size_t after = at + std::string_view("type_cells_").size();
      if (after < code.size() && ident_char(code[after])) continue;
      // A declaration ends with the member name; uses index it (`[`/`.`).
      const std::size_t next = skip_ws_fwd(code, after);
      if (next < code.size() && (code[next] == '[' || code[next] == '.' ||
                                 code[next] == '=' || code[next] == ')')) {
        continue;
      }
      const std::size_t ln = fab.line_of(at);
      const std::size_t b = fab.line_start[ln - 1];
      const std::size_t e = ln < fab.line_start.size() ? fab.line_start[ln] : code.size();
      if (code.substr(b, e - b).find("kNumMsgTypes") == std::string::npos) {
        report(fab, at, Rule::kProtoWire,
               "per-type table is not sized by kNumMsgTypes; a new MsgType will "
                   "index out of bounds",
               out);
      }
    }
  }

  // kMaxWireType must equal the largest WireType enumerator.
  if (tree.codec_hpp != nullptr) {
    SourceFile& ch = *tree.codec_hpp;
    const std::string& code = ch.code;
    const std::size_t at = code.find("enum class WireType");
    if (at != std::string::npos) {
      const std::size_t open = code.find('{', at);
      const std::size_t past =
          open == std::string::npos ? std::string::npos : skip_balanced(code, open, '{', '}');
      long max_val = -1;
      if (past != std::string::npos) {
        for (std::size_t i = code.find('=', open); i != std::string::npos && i < past;
             i = code.find('=', i + 1)) {
          const std::size_t d = skip_ws_fwd(code, i + 1);
          if (d < past && std::isdigit(static_cast<unsigned char>(code[d])) != 0) {
            max_val = std::max(max_val, std::strtol(code.c_str() + d, nullptr, 10));
          }
        }
      }
      const std::size_t km = code.find("kMaxWireType");
      if (km != std::string::npos && max_val >= 0) {
        const std::size_t eq = code.find('=', km);
        long declared = -1;
        if (eq != std::string::npos) {
          const std::size_t d = skip_ws_fwd(code, eq + 1);
          if (d < code.size() && std::isdigit(static_cast<unsigned char>(code[d])) != 0) {
            declared = std::strtol(code.c_str() + d, nullptr, 10);
          }
        }
        if (declared != max_val) {
          report(ch, km, Rule::kProtoWire,
                 "kMaxWireType = " + std::to_string(declared) + " but the largest "
                     "WireType enumerator is " + std::to_string(max_val) +
                     "; header validation will reject (or silently admit) types",
                 out);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// W2 — metric & span namespace consistency.

struct CellSite {
  std::string kind;  // "counter" | "gauge" | "histogram"
  std::string path;
  std::size_t line = 0;
};

struct MetricCatalog {
  std::map<std::pair<std::string, std::string>, CellSite> cells;  // (sub, name)
  // (sub, prefix) for names built as "prefix." + expr or declared `name*`.
  std::map<std::pair<std::string, std::string>, std::string> families;
  std::set<std::string> subsystems;

  [[nodiscard]] bool resolves(const std::string& sub, const std::string& name,
                              std::string_view kind) const {
    const auto it = cells.find({sub, name});
    if (it != cells.end()) return kind.empty() || it->second.kind == kind;
    for (const auto& [key, fam_kind] : families) {
      if (key.first != sub) continue;
      if (name.size() >= key.second.size() &&
          name.compare(0, key.second.size(), key.second) == 0) {
        if (kind.empty() || fam_kind == kind) return true;
      }
    }
    return false;
  }
  /// Name known under any subsystem (for bare `.name == "x"` comparisons,
  /// which carry no subsystem of their own).
  [[nodiscard]] bool any_sub(const std::string& name) const {
    for (const auto& [key, site] : cells) {
      if (key.second == name) return true;
    }
    for (const auto& [key, kind] : families) {
      if (name.size() >= key.second.size() &&
          name.compare(0, key.second.size(), key.second) == 0) {
        return true;
      }
    }
    return false;
  }
};

struct SpanCatalog {
  std::set<std::string> names;
  std::set<std::string> prefixes;  // from "phase:" + expr sites

  [[nodiscard]] bool resolves(const std::string& name) const {
    if (names.count(name) != 0) return true;
    for (const std::string& p : prefixes) {
      if (name.size() >= p.size() && name.compare(0, p.size(), p) == 0) return true;
    }
    return false;
  }
};

/// Harvests `// concord-proto: cell <kind> <sub>/<name>[*] ...` declarations
/// (one kind, one or more cells per comment) into the catalog.
void harvest_cell_declarations(SourceFile& src, MetricCatalog& cat,
                               std::vector<std::string>& declared_subs) {
  constexpr std::string_view kMarker = "concord-proto: cell ";
  for (std::size_t ln = 1; ln < src.comments.size(); ++ln) {
    const std::string& cm = src.comments[ln];
    const std::size_t at = cm.find(kMarker);
    if (at == std::string::npos) continue;
    std::size_t i = at + kMarker.size();
    auto token = [&]() {
      while (i < cm.size() && cm[i] == ' ') ++i;
      const std::size_t b = i;
      while (i < cm.size() && cm[i] != ' ') ++i;
      return cm.substr(b, i - b);
    };
    const std::string kind = token();
    if (kind != "counter" && kind != "gauge" && kind != "histogram") continue;
    for (std::string t = token(); !t.empty(); t = token()) {
      const std::size_t slash = t.find('/');
      if (slash == std::string::npos) break;
      const std::string sub = t.substr(0, slash);
      std::string name = t.substr(slash + 1);
      declared_subs.push_back(sub);
      cat.subsystems.insert(sub);
      if (!name.empty() && name.back() == '*') {
        name.pop_back();
        cat.families.try_emplace({sub, name}, kind);
      } else {
        cat.cells.try_emplace({sub, name}, CellSite{kind, src.path, ln});
      }
    }
  }
}

void collect_cells(SourceFile& src, MetricCatalog& cat, std::vector<Finding>& out) {
  std::vector<std::string> declared_subs;
  harvest_cell_declarations(src, cat, declared_subs);
  const std::string& s = src.code_str;
  for (std::string_view kind : {"counter", "gauge", "histogram"}) {
    for (std::size_t at = s.find(kind); at != std::string::npos;
         at = s.find(kind, at + kind.size())) {
      if (!word_at(s, at, kind)) continue;
      std::size_t i = skip_ws_fwd(s, at + kind.size());
      if (i >= s.size() || s[i] != '(') continue;
      i = skip_ws_fwd(s, i + 1);
      std::string sub;
      std::size_t end = 0;
      if (!read_literal(s, i, sub, end)) continue;  // declaration / wrapper
      i = skip_ws_fwd(s, end);
      if (i >= s.size() || s[i] != ',') continue;
      i = skip_ws_fwd(s, i + 1);
      cat.subsystems.insert(sub);
      std::string name;
      if (read_literal(s, i, name, end)) {
        const std::size_t next = skip_ws_fwd(s, end);
        if (next < s.size() && s[next] == '+') {
          // "prefix." + expr — a whole family of cells.
          cat.families.try_emplace({sub, name}, std::string(kind));
          continue;
        }
        const auto [it, fresh] =
            cat.cells.try_emplace({sub, name}, CellSite{std::string(kind), src.path,
                                                        src.line_of(at)});
        if (!fresh && it->second.kind != kind) {
          report(src, at, Rule::kProtoMetric,
                 "metric " + sub + "/" + name + " created as " + std::string(kind) +
                     " here but as " + it->second.kind + " at " + it->second.path + ":" +
                     std::to_string(it->second.line) + "; the registry aborts on kind "
                     "clashes",
                 out);
        }
      } else {
        // Name computed at runtime: a literal scan cannot see the cells, so
        // the file must declare them.
        bool covered = false;
        for (const std::string& d : declared_subs) {
          if (d == sub) covered = true;
        }
        if (!covered) {
          report(src, at, Rule::kProtoMetric,
                 "metric cell in subsystem \"" + sub + "\" with a computed name; "
                     "declare the names with `// concord-proto: cell " +
                     std::string(kind) + " " + sub + "/<name>` so references can be "
                     "checked",
                 out);
        }
      }
    }
  }
}

void collect_spans(SourceFile& src, SpanCatalog& cat) {
  const std::string& s = src.code_str;
  for (std::string_view fn : {"begin_span", "begin_async"}) {
    for (std::size_t at = s.find(fn); at != std::string::npos;
         at = s.find(fn, at + fn.size())) {
      if (!word_at(s, at, fn)) continue;
      std::size_t i = skip_ws_fwd(s, at + fn.size());
      if (i >= s.size() || s[i] != '(') continue;
      i = skip_ws_fwd(s, i + 1);
      std::string name;
      std::size_t end = 0;
      if (!read_literal(s, i, name, end)) continue;  // declaration or computed
      const std::size_t next = skip_ws_fwd(s, end);
      if (next < s.size() && s[next] == '+') {
        cat.prefixes.insert(name);
      } else {
        cat.names.insert(name);
      }
    }
  }
}

void check_total_reads(SourceFile& src, const MetricCatalog& cat,
                       std::vector<Finding>& out) {
  const std::string& s = src.code_str;
  for (std::string_view fn : {"counter_total", "gauge_total"}) {
    const std::string kind(fn.substr(0, fn.find('_')));
    for (std::size_t at = s.find(fn); at != std::string::npos;
         at = s.find(fn, at + fn.size())) {
      if (!word_at(s, at, fn)) continue;
      std::size_t i = skip_ws_fwd(s, at + fn.size());
      if (i >= s.size() || s[i] != '(') continue;
      i = skip_ws_fwd(s, i + 1);
      std::string sub, name;
      std::size_t end = 0;
      if (!read_literal(s, i, sub, end)) continue;
      i = skip_ws_fwd(s, end);
      if (i >= s.size() || s[i] != ',') continue;
      i = skip_ws_fwd(s, i + 1);
      if (!read_literal(s, i, name, end)) continue;  // computed name — skip
      if (!cat.resolves(sub, name, kind)) {
        report(src, at, Rule::kProtoMetric,
               fn.data() + ("(\"" + sub + "\", \"" + name + "\") reads a metric no "
                            "code path creates; it always returns 0"),
               out);
      }
    }
  }
}

void check_name_comparisons(SourceFile& src, const MetricCatalog& metrics,
                            const SpanCatalog& spans, std::vector<Finding>& out) {
  const bool span_scope = path_matches(src.path, "obs/trace_analysis");
  const std::string& s = src.code_str;
  for (std::size_t at = s.find(".name"); at != std::string::npos;
       at = s.find(".name", at + 5)) {
    const std::size_t after = at + 5;
    if (after < s.size() && ident_char(s[after])) continue;
    std::size_t i = skip_ws_fwd(s, after);
    if (i + 1 >= s.size() || (s.compare(i, 2, "==") != 0 && s.compare(i, 2, "!=") != 0)) {
      continue;
    }
    i = skip_ws_fwd(s, i + 2);
    std::string name;
    std::size_t end = 0;
    if (!read_literal(s, i, name, end)) continue;
    if (span_scope) {
      if (!spans.resolves(name)) {
        report(src, i, Rule::kProtoMetric,
               "span name \"" + name + "\" is compared here but no begin_span/"
                   "begin_async emits it; this analysis arm is dead",
               out);
      }
    } else {
      if (!metrics.any_sub(name)) {
        report(src, i, Rule::kProtoMetric,
               "metric name \"" + name + "\" is compared here but no registry cell "
                   "carries it; this check is dead",
               out);
      }
    }
  }
}

void check_experiments(const std::string& md, SourceFile& anchor, const MetricCatalog& cat,
                       std::vector<Finding>& out) {
  // Metric tokens in EXPERIMENTS.md look like `sub/name` with a known
  // subsystem; file paths (`core/cost_model.hpp`) are excluded by extension.
  std::size_t line = 1;
  for (std::size_t i = 0; i < md.size(); ++i) {
    if (md[i] == '\n') {
      ++line;
      continue;
    }
    if (md[i] != '`') continue;
    const std::size_t close = md.find('`', i + 1);
    if (close == std::string::npos) break;
    const std::string tok = md.substr(i + 1, close - i - 1);
    i = close;
    const std::size_t slash = tok.find('/');
    if (slash == std::string::npos || slash == 0 || slash + 1 >= tok.size()) continue;
    const std::string sub = tok.substr(0, slash);
    std::string name = tok.substr(slash + 1);
    if (cat.subsystems.count(sub) == 0) continue;
    if (name.find('/') != std::string::npos) continue;  // deeper path, not a metric
    bool plausible = true;
    for (const char c : name) {
      if (!ident_char(c) && c != '.' && c != '*') plausible = false;
    }
    if (!plausible) continue;
    for (std::string_view ext : {".hpp", ".cpp", ".h", ".cc", ".md", ".json", ".txt",
                                 ".py"}) {
      if (name.size() > ext.size() &&
          name.compare(name.size() - ext.size(), ext.size(), ext) == 0) {
        plausible = false;
      }
    }
    if (!plausible) continue;
    if (!name.empty() && name.back() == '*') {
      name.pop_back();
      if (!name.empty() && name.back() == '.') name.pop_back();
      bool any = false;
      for (const auto& [key, site] : cat.cells) {
        if (key.first == sub && key.second.compare(0, name.size(), name) == 0) any = true;
      }
      for (const auto& [key, kind] : cat.families) {
        if (key.first == sub && (key.second.compare(0, name.size(), name) == 0 ||
                                 name.compare(0, key.second.size(), key.second) == 0)) {
          any = true;
        }
      }
      if (!any) {
        out.push_back({"EXPERIMENTS.md", line, 0, Rule::kProtoMetric,
                       "documented metric family `" + tok + "` matches no cell the "
                           "tree creates",
                       false, {}});
      }
      continue;
    }
    if (!cat.resolves(sub, name, "")) {
      out.push_back({"EXPERIMENTS.md", line, 0, Rule::kProtoMetric,
                     "documented metric `" + tok + "` names a cell no code path "
                         "creates; the doc has drifted from the tree",
                     false, {}});
    }
  }
  (void)anchor;
}

}  // namespace

void run_proto(const std::string& root, std::vector<Finding>& out,
               std::size_t& files_scanned) {
  ProtoTree tree;
  if (!load_tree(root, tree)) return;
  files_scanned = tree.files.size();
  if (tree.files.empty()) return;

  check_wire(tree, out);

  MetricCatalog metrics;
  SpanCatalog spans;
  std::vector<Finding> creation_findings;
  for (SourceFile& f : tree.files) {
    if (path_matches(f.path, "tests/")) continue;
    collect_cells(f, metrics, creation_findings);
    collect_spans(f, spans);
  }
  out.insert(out.end(), creation_findings.begin(), creation_findings.end());
  for (SourceFile& f : tree.files) {
    if (path_matches(f.path, "tests/")) continue;
    check_total_reads(f, metrics, out);
    check_name_comparisons(f, metrics, spans, out);
  }
  if (!tree.experiments.empty() && tree.message != nullptr) {
    check_experiments(tree.experiments, *tree.message, metrics, out);
  }
  for (const SourceFile& f : tree.files) {
    report_unused_suppressions(f, /*proto_mode=*/true, out);
  }
}

}  // namespace lint
