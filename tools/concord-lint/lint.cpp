// Shared implementation for concord-lint: the source tokenizer that feeds
// every pass, the suppression bookkeeping, and file IO.
#include "lint.hpp"

#include <fstream>
#include <map>
#include <sstream>

namespace lint {

/// Blanks comments, string literals, and char literals so rule scanners only
/// ever see code (`code`), and separately blanks only comments so the proto
/// passes can read string literals (`code_str`). Comment text is captured per
/// line. Handles // and /* */ comments, escape sequences, and
/// R"delim(...)delim" raw strings.
SourceFile load_source(const std::string& path, const std::string& text) {
  SourceFile src;
  src.path = path;
  src.code.reserve(text.size());
  src.code_str.reserve(text.size());
  src.comments.emplace_back();  // line 0 placeholder; lines are 1-based
  src.comments.emplace_back();
  src.line_start.push_back(0);

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State st = State::kCode;
  std::string raw_delim;  // for raw strings: the `)delim"` terminator
  std::size_t line = 1;

  auto put_code = [&](char c) {
    src.code.push_back(c);
    src.code_str.push_back(c);
  };
  // Literal contents: blanked in `code`, preserved in `code_str`.
  auto put_lit = [&](char c) {
    src.code.push_back(c == '\n' ? '\n' : ' ');
    src.code_str.push_back(c);
  };
  // Comment contents: blanked in both buffers.
  auto put_blank = [&](char c) {
    src.code.push_back(c == '\n' ? '\n' : ' ');
    src.code_str.push_back(c == '\n' ? '\n' : ' ');
  };
  auto put_comment = [&](char c) {
    if (c != '\n') src.comments[line].push_back(c);
    put_blank(c);
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLineComment;
          put_blank(c);
        } else if (c == '/' && next == '*') {
          st = State::kBlockComment;
          put_blank(c);
          put_blank(next);
          ++i;
        } else if (c == '"') {
          // Raw string? The prefix R (possibly u8R etc.) sits right before.
          if (i > 0 && text[i - 1] == 'R') {
            std::size_t j = i + 1;
            raw_delim = ")";
            while (j < text.size() && text[j] != '(') raw_delim.push_back(text[j++]);
            raw_delim.push_back('"');
            st = State::kRawString;
          } else {
            st = State::kString;
          }
          put_lit(c);
        } else if (c == '\'' && !(i > 0 && ident_char(text[i - 1]))) {
          // Skip digit separators like 1'000 via the ident-char lookbehind.
          st = State::kChar;
          put_lit(c);
        } else {
          put_code(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') st = State::kCode;
        put_comment(c);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          put_comment(c);
          put_blank(next);
          ++i;
          st = State::kCode;
        } else {
          put_comment(c);
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          put_lit(c);
          put_lit(next);
          ++i;
        } else {
          if (c == '"') st = State::kCode;
          put_lit(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          put_lit(c);
          put_lit(next);
          ++i;
        } else {
          if (c == '\'') st = State::kCode;
          put_lit(c);
        }
        break;
      case State::kRawString:
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) put_lit(text[i + k]);
          i += raw_delim.size() - 1;
          st = State::kCode;
        } else {
          put_lit(c);
        }
        break;
    }
    if (c == '\n') {
      ++line;
      src.comments.emplace_back();
      src.line_start.push_back(src.code.size());
    }
  }

  // Harvest annotations from the captured comments.
  for (std::size_t ln = 1; ln < src.comments.size(); ++ln) {
    const std::string& cm = src.comments[ln];
    if (cm.find("concord-lint: emit-path") != std::string::npos) src.emit_path = true;
    if (cm.find("concord-lint: guarded-scope") != std::string::npos) {
      src.guarded_scope = true;
    }
    if (cm.find("concord-lint: sorted") != std::string::npos) {
      // Justifies a loop on the same line or the line below.
      src.suppressions.push_back({ln, ln, "sorted", false});
      src.suppressions.push_back({ln, ln + 1, "sorted", false});
    }
    for (const char* marker : {"NOLINTNEXTLINE(", "NOLINT("}) {
      const std::size_t at = cm.find(marker);
      if (at == std::string::npos) continue;
      const std::size_t open = at + std::string_view(marker).size();
      const std::size_t close = cm.find(')', open);
      if (close == std::string::npos) continue;
      const bool next_line = std::string_view(marker).starts_with("NOLINTNEXTLINE");
      std::stringstream rules(cm.substr(open, close - open));
      std::string one;
      while (std::getline(rules, one, ',')) {
        const std::size_t b = one.find_first_not_of(" \t");
        const std::size_t e = one.find_last_not_of(" \t");
        if (b == std::string::npos) continue;
        one = one.substr(b, e - b + 1);
        if (!one.starts_with("concord-")) continue;  // clang-tidy's, not ours
        src.suppressions.push_back({ln, next_line ? ln + 1 : ln, one, false});
      }
      break;  // NOLINTNEXTLINE( contains NOLINT(; don't double-harvest
    }
  }
  return src;
}

bool suppressed(SourceFile& src, std::size_t line, Rule rule) {
  bool hit = false;
  for (Suppression& s : src.suppressions) {
    if (s.covers != line) continue;
    if (s.rule == rule_name(rule) || (rule == Rule::kUnorderedEmit && s.rule == "sorted")) {
      s.used = true;
      hit = true;
    }
  }
  return hit;
}

void report_unused_suppressions(const SourceFile& src, bool proto_mode,
                                std::vector<Finding>& out) {
  // `sorted` registers twice (same line + next line); treat the pair as one.
  std::map<std::pair<std::size_t, std::string>, bool> by_site;
  for (const Suppression& s : src.suppressions) {
    auto [it, fresh] = by_site.try_emplace({s.line, s.rule}, s.used);
    if (!fresh) it->second = it->second || s.used;
  }
  for (const auto& [site, used] : by_site) {
    if (used) continue;
    const bool proto_rule = site.second.starts_with("concord-proto");
    if (proto_rule != proto_mode) continue;
    const std::string id =
        site.second == "sorted" ? "concord-unordered-emit" : site.second;
    const std::string label =
        site.second == "sorted"
            ? "`concord-lint: sorted` (suppresses " + id + ")"
            : "NOLINT(" + site.second + ")";
    out.push_back({src.path, site.first, 0, Rule::kUnusedSuppression,
                   "unused suppression " + label + ": nothing here triggers it; remove it",
                   /*warning=*/true, id});
  }
}

bool read_file(const std::string& path, std::string& text) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  text = ss.str();
  return true;
}

}  // namespace lint
