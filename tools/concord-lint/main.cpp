// concord-lint — project-specific determinism, status-discipline, and
// protocol-consistency linter.
//
// A deliberately small, dependency-free static-analysis pass (no libclang)
// that tokenizes the C++ sources and enforces the repo's disciplines, which
// the compiler cannot see:
//
//   D1  concord-determinism     banned nondeterminism sources (wall clocks,
//                               unseeded randomness) outside an allowlist
//   D2  concord-unordered-emit  no range-for / iterator loops over
//                               std::unordered_{map,set} in files tagged
//                               `// concord-lint: emit-path` unless the loop
//                               carries a `// concord-lint: sorted` note
//   D3  concord-status          calls to Status/Result<T>-returning functions
//                               whose value is silently discarded
//   D4  concord-alloc           raw new/malloc outside common/pool_allocator
//   D5  concord-guarded         in src/sim, src/obs, and files tagged
//                               `// concord-lint: guarded-scope`, every data
//                               member of a mutex-holding class must carry a
//                               CONCORD_GUARDED_BY annotation or a justified
//                               `// concord-lint: unguarded(<reason>)`
//
// A separate cross-TU pass family (`--proto`, proto.cpp) checks the wire
// protocol and metric namespace for drift:
//
//   W1  concord-proto-wire      every net::MsgType is fully wired: binding
//                               table row, to_string case, codec pair,
//                               dispatch site, truncation-fuzz fixture
//   W2  concord-proto-metric    every metric/span name referenced anywhere
//                               (watchdog invariants, trace analysis,
//                               EXPERIMENTS.md) names a cell that exists,
//                               with a consistent kind
//
// Every rule is suppressible with `// NOLINT(concord-<rule>)` on the same
// line (or `// NOLINTNEXTLINE(concord-<rule>)` on the line above); a
// suppression that never fires is itself reported, so stale annotations
// cannot accumulate.
//
// Usage:
//   concord-lint --root <repo>          lint <repo>/{src,bench,examples}
//   concord-lint --proto --root <repo>  run the cross-TU protocol passes
//   concord-lint [--json] <file>...     lint the given files only
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace {

namespace fs = std::filesystem;
using lint::Finding;
using lint::Rule;
using lint::SourceFile;

void add_finding(const SourceFile& src, std::size_t offset, Rule rule, std::string msg,
                 std::vector<Finding>& out, bool warning = false) {
  out.push_back({src.path, src.line_of(offset), src.col_of(offset), rule, std::move(msg),
                 warning, {}});
}

// ---------------------------------------------------------------------------
// D1 — banned nondeterminism sources.

struct BannedSource {
  std::string_view needle;
  std::string_view why;
};

constexpr BannedSource kBanned[] = {
    {"std::chrono::system_clock", "wall clock breaks replay determinism"},
    {"std::chrono::steady_clock", "host clock breaks replay determinism"},
    {"system_clock", "wall clock breaks replay determinism"},
    {"steady_clock", "host clock breaks replay determinism"},
    {"std::random_device", "unseeded entropy breaks replay determinism"},
    {"random_device", "unseeded entropy breaks replay determinism"},
    {"gettimeofday(", "wall clock breaks replay determinism"},
    {"clock_gettime(", "wall clock breaks replay determinism"},
    {"timespec_get(", "wall clock breaks replay determinism"},
    {"time(", "wall clock breaks replay determinism"},
    {"srand(", "libc RNG is global, unseeded state"},
    {"rand(", "libc RNG is global, unseeded state"},
};

/// Files allowed to touch real time / real entropy: the seeded RNG itself,
/// the obs layer (owns the virtual-clock <-> host-clock boundary), the sim
/// virtual clock, and the real-UDP transport (genuinely wall-clock-driven).
constexpr std::string_view kDeterminismAllowlist[] = {
    "common/rng", "src/obs/", "obs/host_clock", "src/sim/", "net/udp_",
};

void check_determinism(SourceFile& src, std::vector<Finding>& out) {
  for (std::string_view pat : kDeterminismAllowlist) {
    if (lint::path_matches(src.path, pat)) return;
  }
  const std::string& code = src.code;
  for (const BannedSource& b : kBanned) {
    for (std::size_t at = code.find(b.needle); at != std::string::npos;
         at = code.find(b.needle, at + 1)) {
      // Token boundary: not mid-identifier, and not the tail of a longer
      // qualified name already matched (e.g. `steady_clock` inside
      // `std::chrono::steady_clock`).
      if (at > 0 && (lint::ident_char(code[at - 1]) || code[at - 1] == ':')) continue;
      if (lint::suppressed(src, src.line_of(at), Rule::kDeterminism)) continue;
      add_finding(src, at, Rule::kDeterminism,
                  std::string(b.needle.substr(0, b.needle.find('('))) + ": " +
                      std::string(b.why) + " (use common/rng or the sim virtual clock)",
                  out);
    }
  }
}

// ---------------------------------------------------------------------------
// D4 — raw allocation outside the pool allocator.

void check_alloc(SourceFile& src, std::vector<Finding>& out) {
  if (lint::path_matches(src.path, "common/pool_allocator")) return;
  const std::string& code = src.code;
  for (std::string_view fn : {"malloc(", "calloc(", "realloc(", "aligned_alloc(", "free("}) {
    for (std::size_t at = code.find(fn); at != std::string::npos;
         at = code.find(fn, at + 1)) {
      if (at > 0 && lint::ident_char(code[at - 1])) continue;
      if (lint::suppressed(src, src.line_of(at), Rule::kAlloc)) continue;
      add_finding(src, at, Rule::kAlloc,
                  std::string(fn.substr(0, fn.size() - 1)) +
                      ": raw allocation; route through common/pool_allocator "
                      "or a container",
                  out);
    }
  }
  for (std::size_t at = code.find("new"); at != std::string::npos;
       at = code.find("new", at + 3)) {
    if (!lint::word_at(code, at, "new")) continue;
    // `operator new` declarations are the allocator's business, not a use.
    const std::size_t p = lint::prev_sig(code, at);
    if (p != std::string::npos && lint::ident_char(code[p])) {
      const std::size_t b = lint::ident_begin(code, p);
      if (code.compare(b, p - b + 1, "operator") == 0) continue;
    }
    // Must look like an expression: followed by a type name or '('.
    const std::size_t after = lint::skip_ws_fwd(code, at + 3);
    if (after >= code.size() || (!lint::ident_char(code[after]) && code[after] != '(')) {
      continue;
    }
    if (lint::suppressed(src, src.line_of(at), Rule::kAlloc)) continue;
    add_finding(src, at, Rule::kAlloc,
                "new: raw allocation; use make_unique/make_shared, a container, "
                "or common/pool_allocator",
                out);
  }
}

// ---------------------------------------------------------------------------
// D2 — unordered-container iteration on emit paths.

/// Collects names declared with an unordered container type in this file:
/// `std::unordered_map<K, V> name;` / member `std::unordered_set<T> name_;`.
std::vector<std::string> unordered_names(const SourceFile& src) {
  std::vector<std::string> names;
  const std::string& code = src.code;
  for (std::string_view kind : {"unordered_map", "unordered_set"}) {
    for (std::size_t at = code.find(kind); at != std::string::npos;
         at = code.find(kind, at + kind.size())) {
      if (at > 0 && lint::ident_char(code[at - 1])) continue;
      std::size_t i = lint::skip_ws_fwd(code, at + kind.size());
      if (i >= code.size() || code[i] != '<') continue;
      i = lint::skip_balanced(code, i, '<', '>');
      if (i == std::string::npos) continue;
      i = lint::skip_ws_fwd(code, i);
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
        i = lint::skip_ws_fwd(code, i + 1);
      }
      const std::size_t b = i;
      while (i < code.size() && lint::ident_char(code[i])) ++i;
      if (i > b) names.emplace_back(code.substr(b, i - b));
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void check_unordered_emit(SourceFile& src, std::vector<Finding>& out) {
  if (!src.emit_path) return;
  const std::vector<std::string> names = unordered_names(src);
  const std::string& code = src.code;
  for (std::size_t at = code.find("for"); at != std::string::npos;
       at = code.find("for", at + 3)) {
    if (!lint::word_at(code, at, "for")) continue;
    std::size_t open = lint::skip_ws_fwd(code, at + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = lint::skip_balanced(code, open, '(', ')');
    if (close == std::string::npos) continue;
    const std::string head = code.substr(open + 1, close - open - 2);
    // Range-for over an unordered container, or an iterator loop on one.
    bool flagged = false;
    std::string which;
    const std::size_t colon = [&] {
      int depth = 0;  // ignore ':' inside <>, e.g. std::pair
      for (std::size_t i = 0; i + 1 < head.size(); ++i) {
        if (head[i] == '<' || head[i] == '(' || head[i] == '[') ++depth;
        if ((head[i] == '>' && (i == 0 || head[i - 1] != '-')) || head[i] == ')' ||
            head[i] == ']') {
          --depth;
        }
        if (depth == 0 && head[i] == ':' && head[i + 1] != ':' &&
            (i == 0 || head[i - 1] != ':')) {
          return i;
        }
      }
      return std::string::npos;
    }();
    const std::string range = colon == std::string::npos ? "" : head.substr(colon + 1);
    const std::string& hay = colon == std::string::npos ? head : range;
    if (hay.find("unordered_") != std::string::npos) {
      flagged = true;
      which = "unordered container";
    } else {
      for (const std::string& n : names) {
        std::size_t pos = 0;
        while ((pos = hay.find(n, pos)) != std::string::npos) {
          const bool lb = pos == 0 || !lint::ident_char(hay[pos - 1]);
          const std::size_t after = pos + n.size();
          const bool rb = after >= hay.size() || !lint::ident_char(hay[after]);
          if (lb && rb) {
            // Iterator loops only count when .begin()/.cbegin() is taken;
            // a range-for counts on the bare name.
            if (colon != std::string::npos ||
                hay.compare(after, 7, ".begin(") == 0 ||
                hay.compare(after, 8, ".cbegin(") == 0) {
              flagged = true;
              which = n;
            }
          }
          pos = after;
        }
        if (flagged) break;
      }
    }
    if (!flagged) continue;
    if (lint::suppressed(src, src.line_of(at), Rule::kUnorderedEmit)) continue;
    add_finding(src, at, Rule::kUnorderedEmit,
                "iteration over " + which +
                    " on an emit path: order is hash-dependent; sort first or "
                    "justify with `// concord-lint: sorted`",
                out);
  }
}

// ---------------------------------------------------------------------------
// D3 — discarded Status / Result<T> values.

/// Pass 1: names of functions declared anywhere in the scan set whose return
/// type is Status or Result<...>. Names that are *also* declared with a
/// non-Status builtin return type anywhere (e.g. a `void run()` next to a
/// `Result<T> run()`) are ambiguous for a name-based pass and are skipped —
/// the [[nodiscard]] + -Werror compiler layer is the precise check there.
void collect_status_functions(const SourceFile& src, std::set<std::string>& status_named,
                              std::set<std::string>& other_named) {
  const std::string& code = src.code;
  constexpr std::string_view kOtherTypes[] = {
      "void", "bool", "int",      "unsigned", "long",     "float",
      "double", "auto", "size_t", "uint32_t", "uint64_t", "int64_t",
  };
  auto harvest = [&](std::string_view type, bool template_args, std::set<std::string>& out) {
    for (std::size_t at = code.find(type); at != std::string::npos;
         at = code.find(type, at + type.size())) {
      if (!lint::word_at(code, at, type)) continue;
      std::size_t i = lint::skip_ws_fwd(code, at + type.size());
      if (template_args) {
        if (i >= code.size() || code[i] != '<') continue;
        i = lint::skip_balanced(code, i, '<', '>');
        if (i == std::string::npos) continue;
        i = lint::skip_ws_fwd(code, i);
      }
      const std::size_t b = i;
      while (i < code.size() && lint::ident_char(code[i])) ++i;
      if (i == b) continue;
      const std::size_t after = lint::skip_ws_fwd(code, i);
      if (after >= code.size() || code[after] != '(') continue;
      out.insert(code.substr(b, i - b));
    }
  };
  harvest("Status", false, status_named);
  harvest("Result", true, status_named);
  for (std::string_view t : kOtherTypes) harvest(t, false, other_named);
}

void check_status_discard(SourceFile& src, const std::set<std::string>& fns,
                          std::vector<Finding>& out) {
  const std::string& code = src.code;
  for (const std::string& fn : fns) {
    for (std::size_t at = code.find(fn); at != std::string::npos;
         at = code.find(fn, at + fn.size())) {
      if (at > 0 && lint::ident_char(code[at - 1])) continue;
      std::size_t open = lint::skip_ws_fwd(code, at + fn.size());
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = lint::skip_balanced(code, open, '(', ')');
      if (close == std::string::npos) continue;
      // The call's value is consumed unless the next significant char is ';'.
      const std::size_t after = lint::skip_ws_fwd(code, close);
      if (after >= code.size() || code[after] != ';') continue;
      // Walk back over the receiver chain (`a.b->c::` ...) to the start of
      // the full call expression.
      std::size_t start = at;
      for (;;) {
        const std::size_t p = lint::prev_sig(code, start);
        if (p == std::string::npos) break;
        const bool dot = code[p] == '.';
        const bool arrow = code[p] == '>' && p > 0 && code[p - 1] == '-';
        const bool scope = code[p] == ':' && p > 0 && code[p - 1] == ':';
        if (!dot && !arrow && !scope) break;
        std::size_t q = lint::prev_sig(code, dot ? p : p - 1);
        if (q == std::string::npos) break;
        if (code[q] == ')' || code[q] == ']') {
          // Skip back over a balanced group plus the identifier before it.
          const char closer = code[q];
          const char opener = closer == ')' ? '(' : '[';
          int depth = 0;
          while (q != std::string::npos) {
            if (code[q] == closer) ++depth;
            if (code[q] == opener && --depth == 0) break;
            if (q == 0) break;
            --q;
          }
          const std::size_t r = lint::prev_sig(code, q);
          if (r == std::string::npos || !lint::ident_char(code[r])) {
            start = q;
            continue;
          }
          q = r;
        }
        if (lint::ident_char(code[q])) {
          start = lint::ident_begin(code, q);
        } else {
          start = q;
        }
        continue;
      }
      const std::size_t before = lint::prev_sig(code, start);
      bool discarded = false;
      if (before == std::string::npos) {
        discarded = false;  // file starts with a declaration
      } else if (lint::ident_char(code[before])) {
        // Preceding word: `return x()` consumes; `else`/`do x();` discards;
        // any other identifier means this is a declaration/definition.
        const std::size_t b = lint::ident_begin(code, before);
        const std::string word = code.substr(b, before - b + 1);
        discarded = word == "else" || word == "do";
      } else if (code[before] == ';' || code[before] == '{' || code[before] == '}') {
        discarded = true;
      } else if (code[before] == ')') {
        // `(void)call();` is an intentional, visible drop; `if (...) call();`
        // and `(expr) call();` are not.
        std::size_t q = before;
        int depth = 0;
        while (q != std::string::npos) {
          if (code[q] == ')') ++depth;
          if (code[q] == '(' && --depth == 0) break;
          if (q == 0) { q = std::string::npos; break; }
          --q;
        }
        if (q != std::string::npos) {
          std::string inner = code.substr(q + 1, before - q - 1);
          inner.erase(std::remove_if(inner.begin(), inner.end(),
                                     [](char ch) {
                                       return std::isspace(static_cast<unsigned char>(ch)) != 0;
                                     }),
                      inner.end());
          discarded = inner != "void";
        } else {
          discarded = true;
        }
      }
      if (!discarded) continue;
      if (lint::suppressed(src, src.line_of(at), Rule::kStatus)) continue;
      add_finding(src, at, Rule::kStatus,
                  fn + "(...) returns Status/Result but the value is discarded; "
                       "handle it or write `(void)` with a reason",
                  out);
    }
  }
}

// ---------------------------------------------------------------------------
// D5 — mutex-adjacent members must declare their guard (or justify why not).
//
// Scope: files under src/sim or src/obs (the layers that real host threads
// touch), plus any file tagged `// concord-lint: guarded-scope`. In every
// class/struct that holds a mutex member, each data member (trailing-
// underscore convention) must either carry CONCORD_GUARDED_BY /
// CONCORD_PT_GUARDED_BY, be a synchronization primitive or immutable, or sit
// under a `// concord-lint: unguarded(<reason>)` with a non-empty reason.

bool d5_applies(const SourceFile& src) {
  return src.guarded_scope || lint::path_matches(src.path, "src/sim/") ||
         lint::path_matches(src.path, "src/obs/");
}

struct MemberDecl {
  std::string text;        // statement text (brace blocks collapsed to '{')
  std::size_t offset = 0;  // offset of the declared name in `code`
  std::string name;
};

/// Splits a class body [begin, end) into depth-1 statements and returns the
/// data-member declarations found (by the trailing-underscore convention).
/// Brace blocks (inline method bodies, initializers, nested types) are
/// collapsed so their contents never masquerade as member declarations;
/// nested classes get their own top-level scan.
std::vector<MemberDecl> member_decls(const std::string& code, std::size_t begin,
                                     std::size_t end) {
  std::vector<MemberDecl> members;
  std::string stmt;
  std::size_t stmt_start = begin;
  auto flush = [&](std::size_t at) {
    // A member name is an identifier ending in '_' whose next significant
    // char is one of `; = { [ ,` (the statement text excludes the final ';').
    for (std::size_t i = 0; i < stmt.size(); ++i) {
      if (!lint::ident_char(stmt[i]) || (i > 0 && lint::ident_char(stmt[i - 1]))) continue;
      std::size_t j = i;
      while (j < stmt.size() && lint::ident_char(stmt[j])) ++j;
      if (j == i || stmt[j - 1] != '_') continue;
      const std::size_t after = lint::skip_ws_fwd(stmt, j);
      const char nc = after < stmt.size() ? stmt[after] : ';';
      if (nc == ';' || nc == '=' || nc == '{' || nc == '[' || nc == ',') {
        members.push_back({stmt, stmt_start + i, stmt.substr(i, j - i)});
        break;  // one finding per statement is enough
      }
      i = j;
    }
    stmt.clear();
    stmt_start = at;
  };
  for (std::size_t i = begin; i < end; ++i) {
    const char c = code[i];
    if (c == '{') {
      const std::size_t past = lint::skip_balanced(code, i, '{', '}');
      if (past == std::string::npos) break;
      stmt.push_back('{');  // keep a marker: `name_{0};` still parses
      const std::size_t nxt = lint::skip_ws_fwd(code, past);
      if (nxt < end && code[nxt] == ';') {
        // Brace initializer (or nested type with `};`): statement continues
        // to the ';' handled below.
        i = past - 1;
        continue;
      }
      // Inline function body / nested class: the block ends the statement.
      flush(past);
      i = past - 1;
    } else if (c == ';') {
      flush(i + 1);
    } else {
      // The statement text keeps original offsets alignable: stmt_start is
      // the offset of stmt[0] only while no chars were skipped, so track the
      // true offset of each appended char via padding-free append — offsets
      // stay exact because only brace-block contents are elided, always
      // *after* any member name we could report.
      if (stmt.empty()) {
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
          stmt_start = i + 1;
          continue;
        }
        stmt_start = i;
      }
      stmt.push_back(c);
    }
  }
  return members;
}

bool statement_exempt(const std::string& stmt) {
  for (std::string_view kw : {"static", "constexpr", "using", "typedef", "friend",
                              "enum", "condition_variable", "atomic"}) {
    std::size_t at = 0;
    while ((at = stmt.find(kw, at)) != std::string::npos) {
      if (lint::word_at(stmt, at, kw)) return true;
      at += kw.size();
    }
  }
  // `const T x_;` is immutable — but `const T* x_` is a mutable pointer.
  if (stmt.starts_with("const") && !lint::ident_char(stmt.size() > 5 ? stmt[5] : ' ') &&
      stmt.find('*') == std::string::npos) {
    return true;
  }
  return false;
}

bool is_mutex_member(const std::string& stmt) {
  for (std::string_view kw : {"mutex", "Mutex", "MutexLock"}) {
    std::size_t at = 0;
    while ((at = stmt.find(kw, at)) != std::string::npos) {
      if (lint::word_at(stmt, at, kw)) return true;
      at += kw.size();
    }
  }
  return false;
}

bool is_annotated(const std::string& stmt) {
  return stmt.find("CONCORD_GUARDED_BY(") != std::string::npos ||
         stmt.find("CONCORD_PT_GUARDED_BY(") != std::string::npos;
}

/// True if the member at `line` sits under a `concord-lint: unguarded(...)`
/// comment with a non-empty reason: on the member's own line, or in the
/// comment block immediately above it.
bool has_unguarded_justification(const SourceFile& src, std::size_t line) {
  auto justified = [](const std::string& cm) {
    const std::size_t at = cm.find("concord-lint: unguarded(");
    if (at == std::string::npos) return false;
    const std::size_t open = at + std::string_view("concord-lint: unguarded(").size();
    return open < cm.size() && cm[open] != ')';
  };
  if (line < src.comments.size() && justified(src.comments[line])) return true;
  for (std::size_t ln = line; ln > 1; --ln) {
    const std::size_t above = ln - 1;
    if (!src.code_blank(above)) break;  // a code line ends the comment block
    if (above < src.comments.size()) {
      if (justified(src.comments[above])) return true;
      if (src.comments[above].empty()) break;  // blank line ends the block
    }
  }
  return false;
}

void check_guarded_members(SourceFile& src, std::vector<Finding>& out) {
  if (!d5_applies(src)) return;
  const std::string& code = src.code;
  for (std::string_view kw : {"class", "struct"}) {
    for (std::size_t at = code.find(kw); at != std::string::npos;
         at = code.find(kw, at + kw.size())) {
      if (!lint::word_at(code, at, kw)) continue;
      // `enum class` is not a record; `class X;` is a forward declaration.
      const std::size_t p = lint::prev_sig(code, at);
      if (p != std::string::npos && lint::ident_char(code[p]) &&
          code.compare(lint::ident_begin(code, p), 4, "enum") == 0) {
        continue;
      }
      std::size_t i = at + kw.size();
      while (i < code.size() && code[i] != '{' && code[i] != ';' && code[i] != '(') ++i;
      if (i >= code.size() || code[i] != '{') continue;
      const std::size_t past = lint::skip_balanced(code, i, '{', '}');
      if (past == std::string::npos) continue;
      const std::vector<MemberDecl> members = member_decls(code, i + 1, past - 1);
      bool has_mutex = false;
      for (const MemberDecl& m : members) {
        if (is_mutex_member(m.text)) has_mutex = true;
      }
      if (!has_mutex) continue;
      for (const MemberDecl& m : members) {
        if (is_mutex_member(m.text) || statement_exempt(m.text)) continue;
        if (is_annotated(m.text)) continue;
        const std::size_t ln = src.line_of(m.offset);
        if (has_unguarded_justification(src, ln)) continue;
        if (lint::suppressed(src, ln, Rule::kGuarded)) continue;
        add_finding(src, m.offset, Rule::kGuarded,
                    "member `" + m.name +
                        "` shares a class with a mutex but declares no guard; add "
                        "CONCORD_GUARDED_BY(<mu>) or justify with `// concord-lint: "
                        "unguarded(<reason>)`",
                    out);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void emit(const std::vector<Finding>& findings, std::size_t files, bool json) {
  if (json) {
    std::string out = "{\"findings\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      if (i > 0) out += ',';
      out += "{\"path\":\"";
      json_escape(out, f.path);
      char buf[96];
      std::snprintf(buf, sizeof buf, "\",\"line\":%zu,\"col\":%zu,\"rule\":\"", f.line,
                    f.col);
      out += buf;
      out += rule_name(f.rule);
      out += "\",\"severity\":\"";
      out += f.warning ? "warning" : "error";
      out += "\",\"message\":\"";
      json_escape(out, f.message);
      out += '"';
      if (!f.suppressed_rule.empty()) {
        out += ",\"suppressed_rule\":\"";
        json_escape(out, f.suppressed_rule);
        out += '"';
      }
      out += '}';
    }
    char buf[96];
    std::snprintf(buf, sizeof buf, "],\"files\":%zu,\"findings_total\":%zu}\n", files,
                  findings.size());
    out += buf;
    std::fputs(out.c_str(), stdout);
    return;
  }
  for (const Finding& f : findings) {
    if (f.col > 0) {
      std::printf("%s:%zu:%zu: %s: [%s] %s\n", f.path.c_str(), f.line, f.col,
                  f.warning ? "warning" : "error", rule_name(f.rule), f.message.c_str());
    } else {
      std::printf("%s:%zu: %s: [%s] %s\n", f.path.c_str(), f.line,
                  f.warning ? "warning" : "error", rule_name(f.rule), f.message.c_str());
    }
  }
  std::printf("concord-lint: %zu file(s), %zu finding(s)\n", files, findings.size());
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    if (a.rule != b.rule) {
      return std::string_view(rule_name(a.rule)) < std::string_view(rule_name(b.rule));
    }
    return a.message < b.message;
  });
}

int run(const std::vector<std::string>& paths, bool json) {
  std::vector<SourceFile> files;
  for (const std::string& p : paths) {
    std::string text;
    if (!lint::read_file(p, text)) {
      std::fprintf(stderr, "concord-lint: cannot read %s\n", p.c_str());
      return 2;
    }
    files.push_back(lint::load_source(p, text));
  }

  std::set<std::string> status_fns, other_fns;
  for (const SourceFile& f : files) collect_status_functions(f, status_fns, other_fns);
  for (const std::string& n : other_fns) status_fns.erase(n);

  std::vector<Finding> findings;
  for (SourceFile& f : files) {
    check_determinism(f, findings);
    check_alloc(f, findings);
    check_unordered_emit(f, findings);
    check_status_discard(f, status_fns, findings);
    check_guarded_members(f, findings);
    lint::report_unused_suppressions(f, /*proto_mode=*/false, findings);
  }

  sort_findings(findings);
  emit(findings, files.size(), json);
  return findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string root;
  bool proto = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "concord-lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--proto") {
      proto = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: concord-lint [--json] --root <repo>        per-file rules D1-D5\n"
          "       concord-lint [--json] --proto --root <repo> cross-TU passes W1/W2\n"
          "       concord-lint [--json] <file>...\n");
      return 0;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (proto) {
    if (root.empty()) {
      std::fprintf(stderr, "concord-lint: --proto needs --root <repo>\n");
      return 2;
    }
    std::vector<Finding> findings;
    std::size_t files = 0;
    lint::run_proto(root, findings, files);
    if (files == 0) {
      std::fprintf(stderr, "concord-lint: no protocol sources under %s\n", root.c_str());
      return 2;
    }
    sort_findings(findings);
    emit(findings, files, json);
    return findings.empty() ? 0 : 1;
  }
  if (!root.empty()) {
    for (const char* sub : {"src", "bench", "examples"}) {
      const fs::path dir = fs::path(root) / sub;
      if (!fs::exists(dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          paths.push_back(entry.path().string());
        }
      }
    }
    std::sort(paths.begin(), paths.end());
  }
  if (paths.empty()) {
    std::fprintf(stderr, "concord-lint: nothing to lint (try --root <repo>)\n");
    return 2;
  }
  return run(paths, json);
}
