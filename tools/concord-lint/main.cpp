// concord-lint — project-specific determinism & status-discipline linter.
//
// A deliberately small, dependency-free static-analysis pass (no libclang)
// that tokenizes the C++ sources and enforces the repo's determinism
// disciplines, which the compiler cannot see:
//
//   D1  concord-determinism     banned nondeterminism sources (wall clocks,
//                               unseeded randomness) outside an allowlist
//   D2  concord-unordered-emit  no range-for / iterator loops over
//                               std::unordered_{map,set} in files tagged
//                               `// concord-lint: emit-path` unless the loop
//                               carries a `// concord-lint: sorted` note
//   D3  concord-status          calls to Status/Result<T>-returning functions
//                               whose value is silently discarded
//   D4  concord-alloc           raw new/malloc outside common/pool_allocator
//
// Every rule is suppressible with `// NOLINT(concord-<rule>)` on the same
// line (or `// NOLINTNEXTLINE(concord-<rule>)` on the line above); a
// suppression that never fires is itself reported, so stale annotations
// cannot accumulate.
//
// Usage:
//   concord-lint --root <repo>     lint <repo>/{src,bench,examples}
//   concord-lint <file>...         lint the given files only
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Findings & suppressions

enum class Rule {
  kDeterminism,
  kUnorderedEmit,
  kStatus,
  kAlloc,
  kUnusedSuppression,
};

const char* rule_name(Rule r) {
  switch (r) {
    case Rule::kDeterminism: return "concord-determinism";
    case Rule::kUnorderedEmit: return "concord-unordered-emit";
    case Rule::kStatus: return "concord-status";
    case Rule::kAlloc: return "concord-alloc";
    case Rule::kUnusedSuppression: return "concord-unused-suppression";
  }
  return "concord-unknown";
}

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based
  Rule rule = Rule::kDeterminism;
  std::string message;
  bool warning = false;  // warnings still fail the run; the label differs
};

/// One `NOLINT(concord-*)` / `NOLINTNEXTLINE(concord-*)` / `concord-lint:
/// sorted` annotation, tracked so unused suppressions can be reported.
struct Suppression {
  std::size_t line = 0;      // line the comment sits on (1-based)
  std::size_t covers = 0;    // line whose findings it suppresses
  std::string rule;          // "concord-determinism", ... or "sorted"
  bool used = false;
};

// ---------------------------------------------------------------------------
// Source model: raw text, a comment/string-blanked twin used by all rule
// scanners, and the per-line comment text used by the annotation grammar.

struct SourceFile {
  std::string path;          // as reported
  std::string code;          // comments & literals blanked with spaces
  std::vector<std::string> comments;  // comment text per line (1-based index)
  std::vector<std::size_t> line_start;  // offset of each line in `code`
  std::vector<Suppression> suppressions;
  bool emit_path = false;    // file carries `// concord-lint: emit-path`

  [[nodiscard]] std::size_t line_of(std::size_t offset) const {
    const auto it = std::upper_bound(line_start.begin(), line_start.end(), offset);
    return static_cast<std::size_t>(it - line_start.begin());
  }
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blanks comments, string literals, and char literals so rule scanners only
/// ever see code. Comment text is captured per line. Handles // and /* */
/// comments, escape sequences, and R"delim(...)delim" raw strings.
SourceFile load_source(const std::string& path, const std::string& text) {
  SourceFile src;
  src.path = path;
  src.code.reserve(text.size());
  src.comments.emplace_back();  // line 0 placeholder; lines are 1-based
  src.comments.emplace_back();
  src.line_start.push_back(0);

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State st = State::kCode;
  std::string raw_delim;  // for raw strings: the `)delim"` terminator
  std::size_t line = 1;

  auto put_code = [&](char c) { src.code.push_back(c); };
  auto put_blank = [&](char c) { src.code.push_back(c == '\n' ? '\n' : ' '); };
  auto put_comment = [&](char c) {
    if (c != '\n') src.comments[line].push_back(c);
    put_blank(c);
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLineComment;
          put_blank(c);
        } else if (c == '/' && next == '*') {
          st = State::kBlockComment;
          put_blank(c);
          put_blank(next);
          ++i;
        } else if (c == '"') {
          // Raw string? The prefix R (possibly u8R etc.) sits right before.
          if (i > 0 && text[i - 1] == 'R') {
            std::size_t j = i + 1;
            raw_delim = ")";
            while (j < text.size() && text[j] != '(') raw_delim.push_back(text[j++]);
            raw_delim.push_back('"');
            st = State::kRawString;
          } else {
            st = State::kString;
          }
          put_blank(c);
        } else if (c == '\'' && !(i > 0 && ident_char(text[i - 1]))) {
          // Skip digit separators like 1'000 via the ident-char lookbehind.
          st = State::kChar;
          put_blank(c);
        } else {
          put_code(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') st = State::kCode;
        put_comment(c);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          put_comment(c);
          put_blank(next);
          ++i;
          st = State::kCode;
        } else {
          put_comment(c);
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          put_blank(c);
          put_blank(next);
          ++i;
        } else {
          if (c == '"') st = State::kCode;
          put_blank(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          put_blank(c);
          put_blank(next);
          ++i;
        } else {
          if (c == '\'') st = State::kCode;
          put_blank(c);
        }
        break;
      case State::kRawString:
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) put_blank(text[i + k]);
          i += raw_delim.size() - 1;
          st = State::kCode;
        } else {
          put_blank(c);
        }
        break;
    }
    if (c == '\n') {
      ++line;
      src.comments.emplace_back();
      src.line_start.push_back(src.code.size());
    }
  }

  // Harvest annotations from the captured comments.
  for (std::size_t ln = 1; ln < src.comments.size(); ++ln) {
    const std::string& cm = src.comments[ln];
    if (cm.find("concord-lint: emit-path") != std::string::npos) src.emit_path = true;
    if (cm.find("concord-lint: sorted") != std::string::npos) {
      // Justifies a loop on the same line or the line below.
      src.suppressions.push_back({ln, ln, "sorted", false});
      src.suppressions.push_back({ln, ln + 1, "sorted", false});
    }
    for (const char* marker : {"NOLINTNEXTLINE(", "NOLINT("}) {
      const std::size_t at = cm.find(marker);
      if (at == std::string::npos) continue;
      const std::size_t open = at + std::string_view(marker).size();
      const std::size_t close = cm.find(')', open);
      if (close == std::string::npos) continue;
      const bool next_line = std::string_view(marker).starts_with("NOLINTNEXTLINE");
      std::stringstream rules(cm.substr(open, close - open));
      std::string one;
      while (std::getline(rules, one, ',')) {
        const std::size_t b = one.find_first_not_of(" \t");
        const std::size_t e = one.find_last_not_of(" \t");
        if (b == std::string::npos) continue;
        one = one.substr(b, e - b + 1);
        if (!one.starts_with("concord-")) continue;  // clang-tidy's, not ours
        src.suppressions.push_back({ln, next_line ? ln + 1 : ln, one, false});
      }
      break;  // NOLINTNEXTLINE( contains NOLINT(; don't double-harvest
    }
  }
  return src;
}

/// True (and marks the suppression used) if `rule` is suppressed at `line`.
bool suppressed(SourceFile& src, std::size_t line, Rule rule) {
  bool hit = false;
  for (Suppression& s : src.suppressions) {
    if (s.covers != line) continue;
    if (s.rule == rule_name(rule) || (rule == Rule::kUnorderedEmit && s.rule == "sorted")) {
      s.used = true;
      hit = true;
    }
  }
  return hit;
}

// ---------------------------------------------------------------------------
// Small scanning helpers over the blanked code buffer.

std::size_t skip_ws_fwd(const std::string& code, std::size_t i) {
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
  return i;
}

/// Index of the last non-whitespace char before `i`, or npos.
std::size_t prev_sig(const std::string& code, std::size_t i) {
  while (i > 0) {
    --i;
    if (std::isspace(static_cast<unsigned char>(code[i])) == 0) return i;
  }
  return std::string::npos;
}

/// With code[i] == open, returns the index just past the matching closer.
std::size_t skip_balanced(const std::string& code, std::size_t i, char open, char close) {
  int depth = 0;
  for (; i < code.size(); ++i) {
    if (code[i] == open) ++depth;
    else if (code[i] == close && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Start index of the identifier ending at (and including) `end`.
std::size_t ident_begin(const std::string& code, std::size_t end) {
  std::size_t b = end;
  while (b > 0 && ident_char(code[b - 1])) --b;
  return b;
}

bool word_at(const std::string& code, std::size_t i, std::string_view word) {
  if (code.compare(i, word.size(), word) != 0) return false;
  if (i > 0 && ident_char(code[i - 1])) return false;
  const std::size_t after = i + word.size();
  return after >= code.size() || !ident_char(code[after]);
}

// ---------------------------------------------------------------------------
// D1 — banned nondeterminism sources.

struct BannedSource {
  std::string_view needle;
  std::string_view why;
};

constexpr BannedSource kBanned[] = {
    {"std::chrono::system_clock", "wall clock breaks replay determinism"},
    {"std::chrono::steady_clock", "host clock breaks replay determinism"},
    {"system_clock", "wall clock breaks replay determinism"},
    {"steady_clock", "host clock breaks replay determinism"},
    {"std::random_device", "unseeded entropy breaks replay determinism"},
    {"random_device", "unseeded entropy breaks replay determinism"},
    {"gettimeofday(", "wall clock breaks replay determinism"},
    {"clock_gettime(", "wall clock breaks replay determinism"},
    {"timespec_get(", "wall clock breaks replay determinism"},
    {"time(", "wall clock breaks replay determinism"},
    {"srand(", "libc RNG is global, unseeded state"},
    {"rand(", "libc RNG is global, unseeded state"},
};

/// Files allowed to touch real time / real entropy: the seeded RNG itself,
/// the obs layer (owns the virtual-clock <-> host-clock boundary), the sim
/// virtual clock, and the real-UDP transport (genuinely wall-clock-driven).
constexpr std::string_view kDeterminismAllowlist[] = {
    "common/rng", "src/obs/", "obs/host_clock", "src/sim/", "net/udp_",
};

bool path_matches(const std::string& path, std::string_view pat) {
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  return norm.find(pat) != std::string::npos;
}

void check_determinism(SourceFile& src, std::vector<Finding>& out) {
  for (std::string_view pat : kDeterminismAllowlist) {
    if (path_matches(src.path, pat)) return;
  }
  const std::string& code = src.code;
  for (const BannedSource& b : kBanned) {
    for (std::size_t at = code.find(b.needle); at != std::string::npos;
         at = code.find(b.needle, at + 1)) {
      // Token boundary: not mid-identifier, and not the tail of a longer
      // qualified name already matched (e.g. `steady_clock` inside
      // `std::chrono::steady_clock`).
      if (at > 0 && (ident_char(code[at - 1]) || code[at - 1] == ':')) continue;
      const std::size_t ln = src.line_of(at);
      if (suppressed(src, ln, Rule::kDeterminism)) continue;
      out.push_back({src.path, ln, Rule::kDeterminism,
                     std::string(b.needle.substr(0, b.needle.find('('))) + ": " +
                         std::string(b.why) +
                         " (use common/rng or the sim virtual clock)"});
    }
  }
}

// ---------------------------------------------------------------------------
// D4 — raw allocation outside the pool allocator.

void check_alloc(SourceFile& src, std::vector<Finding>& out) {
  if (path_matches(src.path, "common/pool_allocator")) return;
  const std::string& code = src.code;
  for (std::string_view fn : {"malloc(", "calloc(", "realloc(", "aligned_alloc(", "free("}) {
    for (std::size_t at = code.find(fn); at != std::string::npos;
         at = code.find(fn, at + 1)) {
      if (at > 0 && ident_char(code[at - 1])) continue;
      const std::size_t ln = src.line_of(at);
      if (suppressed(src, ln, Rule::kAlloc)) continue;
      out.push_back({src.path, ln, Rule::kAlloc,
                     std::string(fn.substr(0, fn.size() - 1)) +
                         ": raw allocation; route through common/pool_allocator "
                         "or a container"});
    }
  }
  for (std::size_t at = code.find("new"); at != std::string::npos;
       at = code.find("new", at + 3)) {
    if (!word_at(code, at, "new")) continue;
    // `operator new` declarations are the allocator's business, not a use.
    const std::size_t p = prev_sig(code, at);
    if (p != std::string::npos && ident_char(code[p])) {
      const std::size_t b = ident_begin(code, p);
      if (code.compare(b, p - b + 1, "operator") == 0) continue;
    }
    // Must look like an expression: followed by a type name or '('.
    const std::size_t after = skip_ws_fwd(code, at + 3);
    if (after >= code.size() || (!ident_char(code[after]) && code[after] != '(')) continue;
    const std::size_t ln = src.line_of(at);
    if (suppressed(src, ln, Rule::kAlloc)) continue;
    out.push_back({src.path, ln, Rule::kAlloc,
                   "new: raw allocation; use make_unique/make_shared, a container, "
                   "or common/pool_allocator"});
  }
}

// ---------------------------------------------------------------------------
// D2 — unordered-container iteration on emit paths.

/// Collects names declared with an unordered container type in this file:
/// `std::unordered_map<K, V> name;` / member `std::unordered_set<T> name_;`.
std::vector<std::string> unordered_names(const SourceFile& src) {
  std::vector<std::string> names;
  const std::string& code = src.code;
  for (std::string_view kind : {"unordered_map", "unordered_set"}) {
    for (std::size_t at = code.find(kind); at != std::string::npos;
         at = code.find(kind, at + kind.size())) {
      if (at > 0 && ident_char(code[at - 1])) continue;
      std::size_t i = skip_ws_fwd(code, at + kind.size());
      if (i >= code.size() || code[i] != '<') continue;
      i = skip_balanced(code, i, '<', '>');
      if (i == std::string::npos) continue;
      i = skip_ws_fwd(code, i);
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) i = skip_ws_fwd(code, i + 1);
      const std::size_t b = i;
      while (i < code.size() && ident_char(code[i])) ++i;
      if (i > b) names.emplace_back(code.substr(b, i - b));
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void check_unordered_emit(SourceFile& src, std::vector<Finding>& out) {
  if (!src.emit_path) return;
  const std::vector<std::string> names = unordered_names(src);
  const std::string& code = src.code;
  for (std::size_t at = code.find("for"); at != std::string::npos;
       at = code.find("for", at + 3)) {
    if (!word_at(code, at, "for")) continue;
    std::size_t open = skip_ws_fwd(code, at + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = skip_balanced(code, open, '(', ')');
    if (close == std::string::npos) continue;
    const std::string head = code.substr(open + 1, close - open - 2);
    // Range-for over an unordered container, or an iterator loop on one.
    bool flagged = false;
    std::string which;
    const std::size_t colon = [&] {
      int depth = 0;  // ignore ':' inside <>, e.g. std::pair
      for (std::size_t i = 0; i + 1 < head.size(); ++i) {
        if (head[i] == '<' || head[i] == '(' || head[i] == '[') ++depth;
        if ((head[i] == '>' && (i == 0 || head[i - 1] != '-')) || head[i] == ')' ||
            head[i] == ']') {
          --depth;
        }
        if (depth == 0 && head[i] == ':' && head[i + 1] != ':' &&
            (i == 0 || head[i - 1] != ':')) {
          return i;
        }
      }
      return std::string::npos;
    }();
    const std::string range = colon == std::string::npos ? "" : head.substr(colon + 1);
    const std::string& hay = colon == std::string::npos ? head : range;
    if (hay.find("unordered_") != std::string::npos) {
      flagged = true;
      which = "unordered container";
    } else {
      for (const std::string& n : names) {
        std::size_t pos = 0;
        while ((pos = hay.find(n, pos)) != std::string::npos) {
          const bool lb = pos == 0 || !ident_char(hay[pos - 1]);
          const std::size_t after = pos + n.size();
          const bool rb = after >= hay.size() || !ident_char(hay[after]);
          if (lb && rb) {
            // Iterator loops only count when .begin()/.cbegin() is taken;
            // a range-for counts on the bare name.
            if (colon != std::string::npos ||
                hay.compare(after, 7, ".begin(") == 0 ||
                hay.compare(after, 8, ".cbegin(") == 0) {
              flagged = true;
              which = n;
            }
          }
          pos = after;
        }
        if (flagged) break;
      }
    }
    if (!flagged) continue;
    const std::size_t ln = src.line_of(at);
    if (suppressed(src, ln, Rule::kUnorderedEmit)) continue;
    out.push_back({src.path, ln, Rule::kUnorderedEmit,
                   "iteration over " + which +
                       " on an emit path: order is hash-dependent; sort first or "
                       "justify with `// concord-lint: sorted`"});
  }
}

// ---------------------------------------------------------------------------
// D3 — discarded Status / Result<T> values.

/// Pass 1: names of functions declared anywhere in the scan set whose return
/// type is Status or Result<...>. Names that are *also* declared with a
/// non-Status builtin return type anywhere (e.g. a `void run()` next to a
/// `Result<T> run()`) are ambiguous for a name-based pass and are skipped —
/// the [[nodiscard]] + -Werror compiler layer is the precise check there.
void collect_status_functions(const SourceFile& src, std::set<std::string>& status_named,
                              std::set<std::string>& other_named) {
  const std::string& code = src.code;
  constexpr std::string_view kOtherTypes[] = {
      "void", "bool", "int",      "unsigned", "long",     "float",
      "double", "auto", "size_t", "uint32_t", "uint64_t", "int64_t",
  };
  auto harvest = [&](std::string_view type, bool template_args, std::set<std::string>& out) {
    for (std::size_t at = code.find(type); at != std::string::npos;
         at = code.find(type, at + type.size())) {
      if (!word_at(code, at, type)) continue;
      std::size_t i = skip_ws_fwd(code, at + type.size());
      if (template_args) {
        if (i >= code.size() || code[i] != '<') continue;
        i = skip_balanced(code, i, '<', '>');
        if (i == std::string::npos) continue;
        i = skip_ws_fwd(code, i);
      }
      const std::size_t b = i;
      while (i < code.size() && ident_char(code[i])) ++i;
      if (i == b) continue;
      const std::size_t after = skip_ws_fwd(code, i);
      if (after >= code.size() || code[after] != '(') continue;
      out.insert(code.substr(b, i - b));
    }
  };
  harvest("Status", false, status_named);
  harvest("Result", true, status_named);
  for (std::string_view t : kOtherTypes) harvest(t, false, other_named);
}

void check_status_discard(SourceFile& src, const std::set<std::string>& fns,
                          std::vector<Finding>& out) {
  const std::string& code = src.code;
  for (const std::string& fn : fns) {
    for (std::size_t at = code.find(fn); at != std::string::npos;
         at = code.find(fn, at + fn.size())) {
      if (at > 0 && ident_char(code[at - 1])) continue;
      std::size_t open = skip_ws_fwd(code, at + fn.size());
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = skip_balanced(code, open, '(', ')');
      if (close == std::string::npos) continue;
      // The call's value is consumed unless the next significant char is ';'.
      const std::size_t after = skip_ws_fwd(code, close);
      if (after >= code.size() || code[after] != ';') continue;
      // Walk back over the receiver chain (`a.b->c::` ...) to the start of
      // the full call expression.
      std::size_t start = at;
      for (;;) {
        const std::size_t p = prev_sig(code, start);
        if (p == std::string::npos) break;
        const bool dot = code[p] == '.';
        const bool arrow = code[p] == '>' && p > 0 && code[p - 1] == '-';
        const bool scope = code[p] == ':' && p > 0 && code[p - 1] == ':';
        if (!dot && !arrow && !scope) break;
        std::size_t q = prev_sig(code, dot ? p : p - 1);
        if (q == std::string::npos) break;
        if (code[q] == ')' || code[q] == ']') {
          // Skip back over a balanced group plus the identifier before it.
          const char closer = code[q];
          const char opener = closer == ')' ? '(' : '[';
          int depth = 0;
          while (q != std::string::npos) {
            if (code[q] == closer) ++depth;
            if (code[q] == opener && --depth == 0) break;
            if (q == 0) break;
            --q;
          }
          const std::size_t r = prev_sig(code, q);
          if (r == std::string::npos || !ident_char(code[r])) {
            start = q;
            continue;
          }
          q = r;
        }
        if (ident_char(code[q])) {
          start = ident_begin(code, q);
        } else {
          start = q;
        }
        continue;
      }
      const std::size_t before = prev_sig(code, start);
      bool discarded = false;
      if (before == std::string::npos) {
        discarded = false;  // file starts with a declaration
      } else if (ident_char(code[before])) {
        // Preceding word: `return x()` consumes; `else`/`do x();` discards;
        // any other identifier means this is a declaration/definition.
        const std::size_t b = ident_begin(code, before);
        const std::string word = code.substr(b, before - b + 1);
        discarded = word == "else" || word == "do";
      } else if (code[before] == ';' || code[before] == '{' || code[before] == '}') {
        discarded = true;
      } else if (code[before] == ')') {
        // `(void)call();` is an intentional, visible drop; `if (...) call();`
        // and `(expr) call();` are not.
        std::size_t q = before;
        int depth = 0;
        while (q != std::string::npos) {
          if (code[q] == ')') ++depth;
          if (code[q] == '(' && --depth == 0) break;
          if (q == 0) { q = std::string::npos; break; }
          --q;
        }
        if (q != std::string::npos) {
          std::string inner = code.substr(q + 1, before - q - 1);
          inner.erase(std::remove_if(inner.begin(), inner.end(),
                                     [](char ch) {
                                       return std::isspace(static_cast<unsigned char>(ch)) != 0;
                                     }),
                      inner.end());
          discarded = inner != "void";
        } else {
          discarded = true;
        }
      }
      if (!discarded) continue;
      const std::size_t ln = src.line_of(at);
      if (suppressed(src, ln, Rule::kStatus)) continue;
      out.push_back({src.path, ln, Rule::kStatus,
                     fn + "(...) returns Status/Result but the value is discarded; "
                          "handle it or write `(void)` with a reason"});
    }
  }
}

// ---------------------------------------------------------------------------
// Driver

void check_unused_suppressions(const SourceFile& src, std::vector<Finding>& out) {
  // `sorted` registers twice (same line + next line); treat the pair as one.
  std::map<std::pair<std::size_t, std::string>, bool> by_site;
  for (const Suppression& s : src.suppressions) {
    auto [it, fresh] = by_site.try_emplace({s.line, s.rule}, s.used);
    if (!fresh) it->second = it->second || s.used;
  }
  for (const auto& [site, used] : by_site) {
    if (used) continue;
    const std::string label =
        site.second == "sorted" ? "`concord-lint: sorted`" : "NOLINT(" + site.second + ")";
    Finding f{src.path, site.first, Rule::kUnusedSuppression,
              "unused suppression " + label + ": nothing here triggers it; remove it",
              /*warning=*/true};
    out.push_back(std::move(f));
  }
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

int run(const std::vector<std::string>& paths) {
  std::vector<SourceFile> files;
  for (const std::string& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "concord-lint: cannot read %s\n", p.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back(load_source(p, ss.str()));
  }

  std::set<std::string> status_fns, other_fns;
  for (const SourceFile& f : files) collect_status_functions(f, status_fns, other_fns);
  for (const std::string& n : other_fns) status_fns.erase(n);

  std::vector<Finding> findings;
  for (SourceFile& f : files) {
    check_determinism(f, findings);
    check_alloc(f, findings);
    check_unordered_emit(f, findings);
    check_status_discard(f, status_fns, findings);
    check_unused_suppressions(f, findings);
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return rule_name(a.rule) < std::string_view(rule_name(b.rule));
  });
  for (const Finding& f : findings) {
    std::printf("%s:%zu: %s: [%s] %s\n", f.path.c_str(), f.line,
                f.warning ? "warning" : "error", rule_name(f.rule), f.message.c_str());
  }
  std::printf("concord-lint: %zu file(s), %zu finding(s)\n", files.size(), findings.size());
  return findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string root;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "concord-lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: concord-lint --root <repo> | concord-lint <file>...\n");
      return 0;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (!root.empty()) {
    for (const char* sub : {"src", "bench", "examples"}) {
      const fs::path dir = fs::path(root) / sub;
      if (!fs::exists(dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          paths.push_back(entry.path().string());
        }
      }
    }
    std::sort(paths.begin(), paths.end());
  }
  if (paths.empty()) {
    std::fprintf(stderr, "concord-lint: nothing to lint (try --root <repo>)\n");
    return 2;
  }
  return run(paths);
}
