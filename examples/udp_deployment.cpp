// Real-socket deployment: the paper's actual data path over loopback UDP.
//
//   $ ./udp_deployment [shards] [blocks_per_proc]
//
// Instead of the emulated fabric, this example runs genuine UDP sockets:
// DHT shard nodes bind real ports, memory update monitors hash real process
// memory and push codec-encoded insert/remove datagrams "send and forget",
// and node-wise queries travel as request/response datagrams. This is the
// miniature of the deployed system; the emulation exists only because 128
// physical nodes don't fit in this room.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "dht/placement.hpp"
#include "mem/update_monitor.hpp"
#include "net/udp_node.hpp"
#include "workload/workloads.hpp"

using namespace concord;

int main(int argc, char** argv) {
  const std::uint32_t shards = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
  const std::size_t blocks = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 256;
  constexpr std::uint32_t kMaxEntities = 16;

  std::printf("== real-UDP deployment: %u DHT shard nodes on loopback ==\n", shards);

  // Bring up the shard nodes.
  std::vector<std::unique_ptr<net::UdpDhtNode>> nodes;
  std::vector<std::uint16_t> ports;
  for (std::uint32_t i = 0; i < shards; ++i) {
    nodes.push_back(std::make_unique<net::UdpDhtNode>(kMaxEntities));
    if (!ok(nodes.back()->start())) {
      std::puts("failed to bind a shard socket");
      return 1;
    }
    ports.push_back(nodes.back()->port());
    std::printf("  shard %u listening on 127.0.0.1:%u\n", i, ports[i]);
  }

  // Two processes with overlapping content, tracked by a real monitor.
  mem::MemoryEntity proc_a(entity_id(0), node_id(0), EntityKind::kProcess, blocks, 4096);
  mem::MemoryEntity proc_b(entity_id(1), node_id(1), EntityKind::kProcess, blocks, 4096);
  workload::fill(proc_a, workload::defaults_for(workload::Kind::kMoldy, 77));
  workload::fill(proc_b, workload::defaults_for(workload::Kind::kMoldy, 77));

  mem::MemoryUpdateMonitor monitor;
  monitor.attach(proc_a);
  monitor.attach(proc_b);

  net::UdpEndpoint uplink;  // the monitor's sending socket
  if (!ok(uplink.bind())) {
    std::puts("failed to bind the monitor socket");
    return 1;
  }

  const dht::Placement placement(shards);
  std::uint64_t sent = 0;
  const mem::ScanStats st = monitor.scan([&](const mem::ContentUpdate& u) {
    const auto owner = raw(placement.owner(u.hash));
    (void)net::UdpDhtNode::send_update(
        uplink, ports[owner],
        net::codec::DhtUpdate{u.hash, u.entity,
                              u.op == mem::ContentUpdate::Op::kInsert});
    ++sent;
    // Pace the senders the way a throttled monitor does, and let the
    // single-threaded nodes drain (a deployment would poll in their own
    // processes).
    if (sent % 64 == 0) {
      for (auto& n : nodes) n->poll_all();
    }
  });
  for (auto& n : nodes) n->poll_all();

  std::uint64_t stored = 0, applied = 0;
  for (auto& n : nodes) {
    stored += n->store().unique_hashes();
    applied += n->stats().updates_applied;
  }
  std::printf("scan: %llu blocks hashed, %llu datagrams sent, %llu applied, "
              "%llu unique hashes stored (loss: %lld)\n",
              static_cast<unsigned long long>(st.blocks_hashed),
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(applied),
              static_cast<unsigned long long>(stored),
              static_cast<long long>(sent - applied));

  // A node-wise query over the real wire: who holds proc_a's block 0?
  const hash::BlockHasher hasher;
  const ContentHash h = hasher(proc_a.block(0));
  const auto owner = raw(placement.owner(h));
  std::vector<std::byte> wire;
  net::codec::encode(net::codec::Query{1, h, true}, wire);
  if (!ok(uplink.send_to(ports[owner], wire))) {
    std::puts("query send failed");
    return 1;
  }
  nodes[owner]->poll_all();
  const auto got = uplink.recv(1000);
  if (!got.has_value()) {
    std::puts("query reply lost (UDP is UDP) — rerun");
    return 1;
  }
  const auto reply = net::codec::decode_query_reply(got.value());
  if (!reply.has_value()) {
    std::puts("malformed reply");
    return 1;
  }
  std::printf("entities(%s) over the wire: %u copies:", h.to_string().c_str(),
              reply.value().num_copies);
  for (const EntityId e : reply.value().entities) std::printf(" %u", raw(e));
  std::printf("\n");

  // A collective query over the wire: scatter one slice request to every
  // shard, gather, and merge by addition — sharing() the deployed way.
  const std::vector<std::uint32_t> hosts = {0, 1};  // entity -> node
  for (auto& n : nodes) n->set_entity_hosts(hosts);
  net::codec::CollectiveQuery cq;
  cq.req_id = 2;
  cq.k = 2;
  cq.scope_words = {0b11};  // both processes
  net::codec::CollectiveReply total;
  for (std::uint32_t s = 0; s < shards; ++s) {
    // Interleave: the single-threaded node answers between send and recv.
    std::vector<std::byte> req;
    net::codec::encode(cq, req);
    if (!ok(uplink.send_to(ports[s], req))) continue;
    nodes[s]->poll_all();
    const auto resp = uplink.recv(1000);
    if (!resp.has_value()) continue;
    const auto part = net::codec::decode_collective_reply(resp.value());
    if (!part.has_value()) continue;
    total.total += part.value().total;
    total.unique += part.value().unique;
    total.intra += part.value().intra;
    total.inter += part.value().inter;
    total.k_count += part.value().k_count;
  }
  const double dos = total.total == 0 ? 0.0
                                      : 100.0 *
                                            static_cast<double>(total.total - total.unique) /
                                            static_cast<double>(total.total);
  std::printf("collective sharing over the wire: %llu copies / %llu distinct — DoS %.1f%% "
              "(%llu hashes on both nodes)\n",
              static_cast<unsigned long long>(total.total),
              static_cast<unsigned long long>(total.unique), dos,
              static_cast<unsigned long long>(total.k_count));
  return 0;
}
