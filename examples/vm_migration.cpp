// Live gang migration of a group of VMs, exploiting memory redundancy.
//
//   $ ./vm_migration [vms] [MB_per_vm]
//
// A pool of mostly-identical VMs (a common cloud shape: same OS image,
// different working sets) lives on the first half of the nodes; we migrate
// them all to the second half. Content already resident at a destination —
// either from a previously migrated twin or a resident VM — never crosses
// the wire. This is the introduction's "a single process or VM could be
// reconstructed using multiple sources" scenario.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "services/migration.hpp"
#include "workload/workloads.hpp"

using namespace concord;

int main(int argc, char** argv) {
  const std::uint32_t vms = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
  const std::size_t mb = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;
  const std::size_t blocks = mb * 1024 * 1024 / kDefaultBlockSize;
  const std::uint32_t nodes = vms * 2;

  core::ClusterParams params;
  params.num_nodes = nodes;
  params.max_entities = 4 * vms + 8;
  core::Cluster cluster(params);

  std::printf("== VM gang migration: %u VMs x %zu MB, nodes 0-%u -> %u-%u ==\n", vms, mb,
              vms - 1, vms, nodes - 1);

  // Mostly-identical VMs: a large shared "OS image" pool plus unique state.
  std::vector<services::MigrationPlanItem> plan;
  for (std::uint32_t i = 0; i < vms; ++i) {
    mem::MemoryEntity& vm =
        cluster.create_entity(node_id(i), EntityKind::kVirtualMachine, blocks,
                              kDefaultBlockSize);
    auto wp = workload::defaults_for(workload::Kind::kMoldy, 99);  // same seed: shared image
    wp.shared_fraction = 0.7;
    wp.pool_pages = blocks / 2;
    workload::fill(vm, wp);
    // Two VMs per destination node: after the first lands, the second finds
    // most of its content already resident.
    plan.push_back({vm.id(), node_id(vms + i / 2)});
  }
  (void)cluster.scan_all();

  services::CollectiveMigration mig(cluster);
  const services::MigrationStats stats = mig.migrate(plan);
  if (!ok(stats.status)) {
    std::printf("migration failed\n");
    return 1;
  }

  const std::uint64_t total_bytes = stats.blocks_total * kDefaultBlockSize;
  std::printf("blocks: %llu total, %llu shipped, %llu reconstructed from "
              "destination-resident content (%llu stale DHT claims re-verified)\n",
              static_cast<unsigned long long>(stats.blocks_total),
              static_cast<unsigned long long>(stats.blocks_shipped),
              static_cast<unsigned long long>(stats.blocks_reconstructed),
              static_cast<unsigned long long>(stats.stale_claims));
  std::printf("wire traffic: %.1f MB of %.1f MB of VM memory (%.1f%% saved), %.2f ms\n",
              static_cast<double>(stats.wire_bytes) / 1e6,
              static_cast<double>(total_bytes) / 1e6,
              100.0 * (1.0 - static_cast<double>(stats.wire_bytes) /
                                 static_cast<double>(total_bytes)),
              static_cast<double>(stats.latency) / 1e6);

  for (const EntityId id : stats.new_ids) {
    std::printf("  VM %u now on node %u\n", raw(id), raw(cluster.registry().host_of(id)));
  }
  return 0;
}
