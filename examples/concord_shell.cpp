// concord_shell — the interactive control shell of Fig. 2.
//
//   $ ./concord_shell            # interactive REPL
//   $ ./concord_shell --demo     # scripted walk-through
//   $ echo "..." | ./concord_shell
//
// Drives an emulated site through the full public API: entity lifecycle,
// monitor epochs, the Fig. 3 query interface, service commands
// (checkpoint/restore), migration, the audit service, and traffic/DHT
// statistics. Type `help` for the command list.
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "query/queries.hpp"
#include "services/checkpoint_format.hpp"
#include "services/integrity_scrub.hpp"
#include "services/collective_checkpoint.hpp"
#include "services/dht_audit.hpp"
#include "services/migration.hpp"
#include "services/replica_resync.hpp"
#include "services/shard_recovery.hpp"
#include "svc/command_engine.hpp"
#include "workload/workloads.hpp"

using namespace concord;

namespace {

struct Shell {
  std::unique_ptr<core::Cluster> cluster;
  std::unique_ptr<services::ShardRecovery> recovery;  // auto-runs on epoch change
  std::unique_ptr<services::ReplicaResync> resync;    // R > 1 only; after recovery
  std::unique_ptr<services::CollectiveCheckpointService> last_ckpt;

  bool require_cluster() const {
    if (!cluster) std::puts("no cluster — run: cluster <nodes> [loss]");
    return cluster != nullptr;
  }

  std::vector<EntityId> parse_entities(const std::string& spec) const {
    std::vector<EntityId> out;
    if (spec == "all") return cluster->live_entities();
    std::stringstream ss(spec);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      out.push_back(entity_id(static_cast<std::uint32_t>(std::stoul(tok))));
    }
    return out;
  }

  void cmd_cluster(std::istringstream& args) {
    std::uint32_t nodes = 4;
    double loss = 0.0;
    std::size_t mtu = 1500;  // 0 disables update batching
    std::uint32_t repl = 1;  // DHT replica-group size (clamped to nodes)
    args >> nodes >> loss >> mtu >> repl;
    core::ClusterParams p;
    p.num_nodes = nodes;
    p.max_entities = 256;
    p.fabric.loss_rate = loss;
    p.update_batching.enabled = mtu != 0;
    if (mtu != 0) p.update_batching.mtu_bytes = mtu;
    p.dht_replication = repl;
    // The shell is a debugging surface: stamp trace context on datagrams so
    // `trace <file>` exports show cross-node causal arrows, and let the
    // watchdog sweep the invariants at every scan boundary.
    p.trace_propagation = true;
    p.watchdog.enabled = true;
    resync.reset();
    recovery.reset();
    cluster = std::make_unique<core::Cluster>(p);
    recovery = std::make_unique<services::ShardRecovery>(*cluster);
    if (cluster->placement().replication() > 1) {
      resync = std::make_unique<services::ReplicaResync>(*cluster);
    }
    last_ckpt.reset();
    if (mtu != 0) {
      std::printf("cluster: %u nodes, loss %.1f%%, update batching at %zu B MTU "
                  "(%zu records/datagram)",
                  nodes, loss * 100.0, mtu, p.update_batching.max_records());
    } else {
      std::printf("cluster: %u nodes, loss %.1f%%, update batching off", nodes,
                  loss * 100.0);
    }
    std::printf(", R=%u%s\n", cluster->placement().replication(),
                cluster->placement().replication() > 1 ? " (replica resync on)" : "");
  }

  void cmd_entity(std::istringstream& args) {
    if (!require_cluster()) return;
    std::uint32_t node = 0;
    std::size_t blocks = 64;
    std::string kind = "process";
    args >> node >> blocks >> kind;
    if (node >= cluster->num_nodes()) {
      std::puts("no such node");
      return;
    }
    const EntityKind k =
        kind == "vm" ? EntityKind::kVirtualMachine : EntityKind::kProcess;
    mem::MemoryEntity& e = cluster->create_entity(node_id(node), k, blocks, 4096);
    std::printf("entity %u on node %u: %zu blocks of 4 KB\n", raw(e.id()), node, blocks);
  }

  void cmd_fill(std::istringstream& args) {
    if (!require_cluster()) return;
    std::uint32_t id = 0;
    std::string kind = "moldy";
    std::uint64_t seed = 1;
    args >> id >> kind >> seed;
    const workload::Kind k = kind == "nasty"    ? workload::Kind::kNasty
                             : kind == "hpccg"  ? workload::Kind::kHpccg
                             : kind == "random" ? workload::Kind::kRandom
                                                : workload::Kind::kMoldy;
    workload::fill(cluster->entity(entity_id(id)), workload::defaults_for(k, seed));
    std::printf("entity %u filled (%s, seed %llu)\n", id, kind.c_str(),
                static_cast<unsigned long long>(seed));
  }

  void cmd_mutate(std::istringstream& args) {
    if (!require_cluster()) return;
    std::uint32_t id = 0;
    double fraction = 0.1;
    args >> id >> fraction;
    workload::mutate(cluster->entity(entity_id(id)), fraction, 4242);
    std::printf("entity %u: ~%.0f%% of blocks rewritten\n", id, fraction * 100.0);
  }

  void cmd_scan() {
    if (!require_cluster()) return;
    const mem::ScanStats st = cluster->scan_all();
    std::printf("scan: %llu blocks hashed, %llu inserts, %llu removes; DHT now tracks %zu "
                "unique hashes\n",
                static_cast<unsigned long long>(st.blocks_hashed),
                static_cast<unsigned long long>(st.inserts_emitted),
                static_cast<unsigned long long>(st.removes_emitted),
                cluster->total_unique_hashes());
  }

  void cmd_copies(std::istringstream& args) {
    if (!require_cluster()) return;
    std::uint32_t id = 0;
    BlockIndex block = 0;
    args >> id >> block;
    const mem::MemoryEntity& e = cluster->entity(entity_id(id));
    if (block >= e.num_blocks()) {
      std::puts("no such block");
      return;
    }
    const hash::BlockHasher hasher(cluster->params().hash_algorithm);
    const ContentHash h = hasher(e.block(block));
    query::QueryEngine q(*cluster);
    const query::NodewiseAnswer ans = q.entities(node_id(0), h);
    std::printf("%s: %zu entities hold it:", h.to_string().c_str(), ans.entities.size());
    for (const EntityId eid : ans.entities) std::printf(" %u", raw(eid));
    std::printf("  (%.1f us)\n", static_cast<double>(ans.latency) / 1e3);
  }

  void cmd_sharing(std::istringstream& args) {
    if (!require_cluster()) return;
    std::string spec = "all";
    args >> spec;
    const auto set = parse_entities(spec);
    query::QueryEngine q(*cluster);
    const query::SharingAnswer a = q.sharing(node_id(0), set);
    std::printf("DoS %.1f%%: %llu copies / %llu distinct (intra %llu, inter %llu), %.2f ms\n",
                a.degree_of_sharing() * 100.0,
                static_cast<unsigned long long>(a.total_copies),
                static_cast<unsigned long long>(a.unique_hashes),
                static_cast<unsigned long long>(a.intra_sharing),
                static_cast<unsigned long long>(a.inter_sharing),
                static_cast<double>(a.latency) / 1e6);
  }

  void cmd_kshared(std::istringstream& args) {
    if (!require_cluster()) return;
    std::size_t k = 2;
    args >> k;
    query::QueryEngine q(*cluster);
    const query::KCopyAnswer a =
        q.num_shared_content(node_id(0), cluster->live_entities(), k);
    std::printf("%llu hashes with >= %zu replicas\n",
                static_cast<unsigned long long>(a.num_hashes), k);
  }

  void cmd_checkpoint(std::istringstream& args) {
    if (!require_cluster()) return;
    std::string spec = "all", dir = "shell-ckpt";
    args >> spec >> dir;
    last_ckpt = std::make_unique<services::CollectiveCheckpointService>(*cluster);
    svc::CommandEngine engine(*cluster);
    svc::CommandSpec cmd;
    cmd.service_entities = parse_entities(spec);
    cmd.config.set("ckpt.dir", dir);
    const svc::CommandStats st = engine.execute(*last_ckpt, cmd);
    std::printf("checkpoint [%s]: %s; %llu distinct handled, %llu stale, "
                "%llu/%llu blocks by pointer, %.1f KB total, %.2f ms\n",
                dir.c_str(), std::string(to_string(st.status)).c_str(),
                static_cast<unsigned long long>(st.collective_handled),
                static_cast<unsigned long long>(st.collective_stale),
                static_cast<unsigned long long>(st.local_covered),
                static_cast<unsigned long long>(st.local_blocks),
                static_cast<double>(last_ckpt->total_bytes()) / 1e3,
                static_cast<double>(st.latency()) / 1e6);
  }

  void cmd_restore(std::istringstream& args) {
    if (!require_cluster()) return;
    if (!last_ckpt) {
      std::puts("no checkpoint taken in this session");
      return;
    }
    std::uint32_t id = 0;
    args >> id;
    const auto mem = services::restore_entity(cluster->fs(), last_ckpt->se_path(entity_id(id)),
                                              last_ckpt->shared_path());
    if (!mem.has_value()) {
      std::printf("restore failed: %s\n", std::string(to_string(mem.status())).c_str());
      return;
    }
    const mem::MemoryEntity& e = cluster->entity(entity_id(id));
    bool identical = mem.value().size() == e.memory_bytes();
    for (BlockIndex b = 0; identical && b < e.num_blocks(); ++b) {
      identical = std::equal(e.block(b).begin(), e.block(b).end(),
                             mem.value().begin() +
                                 static_cast<std::ptrdiff_t>(b * e.block_size()));
    }
    std::printf("restored %zu bytes — %s current memory\n", mem.value().size(),
                identical ? "identical to" : "DIFFERS from");
  }

  void cmd_migrate(std::istringstream& args) {
    if (!require_cluster()) return;
    std::uint32_t id = 0, node = 0;
    args >> id >> node;
    services::CollectiveMigration mig(*cluster);
    const services::MigrationPlanItem item{entity_id(id), node_id(node)};
    const services::MigrationStats st = mig.migrate(std::span(&item, 1));
    if (!ok(st.status)) {
      std::puts("migration failed");
      return;
    }
    std::printf("entity %u -> node %u as entity %u: %llu shipped, %llu reconstructed, "
                "%.1f KB on the wire, %.2f ms\n",
                id, node, raw(st.new_ids[0]),
                static_cast<unsigned long long>(st.blocks_shipped),
                static_cast<unsigned long long>(st.blocks_reconstructed),
                static_cast<double>(st.wire_bytes) / 1e3,
                static_cast<double>(st.latency) / 1e6);
  }

  void cmd_audit() {
    if (!require_cluster()) return;
    services::DhtAudit audit(*cluster);
    const services::AuditReport r = audit.run_to_convergence();
    std::printf("audit: %llu entries checked, %llu missing repaired, %llu stale removed",
                static_cast<unsigned long long>(r.entries_checked),
                static_cast<unsigned long long>(r.missing_repaired),
                static_cast<unsigned long long>(r.stale_removed));
    if (cluster->placement().replication() > 1) {
      std::printf(", %llu under- / %llu over-replicated",
                  static_cast<unsigned long long>(r.under_replicated),
                  static_cast<unsigned long long>(r.over_replicated));
    }
    std::printf("\n");
  }

  void cmd_fault(std::istringstream& args) {
    if (!require_cluster()) return;
    std::uint32_t node = 0;
    std::string what;
    if (!(args >> node >> what) || node >= cluster->num_nodes()) {
      std::puts("usage: fault <node> crash|restart|pause|resume");
      return;
    }
    const NodeId n = node_id(node);
    if (what == "crash") cluster->fault().crash(n);
    else if (what == "restart") cluster->fault().restart(n);
    else if (what == "pause") cluster->fault().pause(n);
    else if (what == "resume") cluster->fault().resume(n);
    else {
      std::puts("usage: fault <node> crash|restart|pause|resume");
      return;
    }
    std::printf("node %u: %s (now %s; run `detect` to update membership)\n", node,
                what.c_str(),
                cluster->fault().is_crashed(n)  ? "crashed, shard lost"
                : cluster->fault().is_paused(n) ? "paused, state intact"
                                                : "up");
  }

  void cmd_partition(std::istringstream& args) {
    if (!require_cluster()) return;
    std::uint32_t a = 0, b = 0;
    if (!(args >> a >> b) || a >= cluster->num_nodes() || b >= cluster->num_nodes() ||
        a == b) {
      std::puts("usage: partition <a> <b>   (toggles the symmetric cut)");
      return;
    }
    if (cluster->fault().partitioned(node_id(a), node_id(b))) {
      cluster->fault().heal_partition(node_id(a), node_id(b));
      std::printf("partition %u <-> %u healed\n", a, b);
    } else {
      cluster->fault().partition(node_id(a), node_id(b));
      std::printf("partition %u <-> %u cut (both directions)\n", a, b);
    }
  }

  void cmd_detect() {
    if (!require_cluster()) return;
    const std::uint64_t before = cluster->membership().epoch;
    const core::MembershipView& v = cluster->detect();
    std::printf("detect: epoch %llu (%s), %u/%u alive",
                static_cast<unsigned long long>(v.epoch),
                v.epoch == before ? "unchanged" : "advanced",
                static_cast<std::uint32_t>(v.alive_count()), cluster->num_nodes());
    const auto suspected = v.suspected();
    if (!suspected.empty()) {
      std::printf(", suspected:");
      for (const NodeId n : suspected) std::printf(" %u", raw(n));
    }
    std::printf("\n");
    if (v.epoch != before && recovery) {
      const services::RecoveryReport& r = recovery->last_report();
      std::printf("recovery: %llu ground-truth hashes checked, %llu entries republished",
                  static_cast<unsigned long long>(r.hashes_checked),
                  static_cast<unsigned long long>(r.republished));
      if (r.skipped_replicated > 0) {
        std::printf(", %llu left to replica resync",
                    static_cast<unsigned long long>(r.skipped_replicated));
      }
      std::printf(" (%.2f ms)\n", static_cast<double>(r.latency) / 1e6);
    }
    if (v.epoch != before && resync) {
      const services::ResyncReport& r = resync->last_report();
      std::printf("resync: %llu dirty shards, %llu synced from donors "
                  "(%llu records streamed, %llu without donor) (%.2f ms)\n",
                  static_cast<unsigned long long>(r.shards_examined),
                  static_cast<unsigned long long>(r.shards_synced),
                  static_cast<unsigned long long>(r.records_streamed),
                  static_cast<unsigned long long>(r.no_donor),
                  static_cast<double>(r.latency) / 1e6);
    }
  }

  void cmd_corrupt(std::istringstream& args) {
    if (!require_cluster()) return;
    double rate = 0.0;
    std::string checksums;
    if (!(args >> rate) || rate < 0.0 || rate > 1.0) {
      std::puts("usage: corrupt <rate 0..1> [on|off]   (on/off toggles wire checksums)");
      return;
    }
    args >> checksums;
    cluster->fabric().set_corrupt_rate(rate);
    if (checksums == "on") cluster->fabric().set_checksum_enabled(true);
    else if (checksums == "off") cluster->fabric().set_checksum_enabled(false);
    std::printf("fabric: %.1f%% of datagram payloads bit-flipped in flight; wire "
                "checksums %s (%s)\n",
                rate * 100.0, cluster->fabric().checksum_enabled() ? "on" : "off",
                cluster->fabric().checksum_enabled()
                    ? "corrupt datagrams dropped + counted, reliable class retries"
                    : "corruption arrives undetected — run `scrub` to heal the DHT");
  }

  void cmd_rot(std::istringstream& args) {
    if (!require_cluster()) return;
    std::string path;
    if (!(args >> path)) {
      std::puts("usage: rot <file> [offset] [bit 0-7]");
      return;
    }
    const auto size = cluster->fs().size(path);
    if (!size.has_value()) {
      std::printf("rot: no such file '%s' (see `stats` for the file count)\n", path.c_str());
      return;
    }
    FileOffset offset = size.value() / 2;  // default: a bit in the middle
    unsigned bit = 0;
    args >> offset >> bit;
    const Status st = cluster->fs().rot(path, offset, bit);
    if (!ok(st)) {
      std::printf("rot failed: %s\n", std::string(to_string(st)).c_str());
      return;
    }
    std::printf("rot: flipped bit %u of byte %llu in %s (%llu flips total)\n", bit,
                static_cast<unsigned long long>(offset), path.c_str(),
                static_cast<unsigned long long>(cluster->fs().rot_flips()));
  }

  void cmd_scrub() {
    if (!require_cluster()) return;
    services::IntegrityScrub scrub(*cluster);
    const services::ScrubReport r = scrub.scrub_and_heal();
    std::printf("scrub: %llu entries re-hashed, %llu quarantined, %llu repaired "
                "in %llu rounds (%.2f ms)%s\n",
                static_cast<unsigned long long>(r.entries_checked),
                static_cast<unsigned long long>(r.quarantined),
                static_cast<unsigned long long>(r.repaired),
                static_cast<unsigned long long>(r.rounds),
                static_cast<double>(r.latency) / 1e6,
                r.repaired == r.quarantined ? "" : "  ! unhealed quarantines remain");
  }

  void cmd_stats() {
    if (!require_cluster()) return;
    const net::NodeTraffic t = cluster->fabric().total_traffic();
    std::printf("network: %llu msgs / %.1f KB sent, %llu dropped, %llu blackholed\n",
                static_cast<unsigned long long>(t.msgs_sent),
                static_cast<double>(t.bytes_sent) / 1e3,
                static_cast<unsigned long long>(t.msgs_dropped),
                static_cast<unsigned long long>(t.msgs_blackholed));
    std::printf("overload: %llu shed at ingress, %llu backoff retransmits, "
                "%llu breaker trips\n",
                static_cast<unsigned long long>(t.msgs_shed),
                static_cast<unsigned long long>(t.retransmits),
                static_cast<unsigned long long>(cluster->fabric().breaker_trips()));
    const core::MembershipView& view = cluster->membership();
    const auto suspected = view.suspected();
    const auto down = cluster->fault().down_nodes();
    std::printf("failures: epoch %llu, %zu suspected",
                static_cast<unsigned long long>(view.epoch), suspected.size());
    for (const NodeId n : suspected) std::printf(" %u", raw(n));
    std::printf("; %zu down now", down.size());
    for (const NodeId n : down) {
      std::printf(" %u(%s)", raw(n), cluster->fault().is_crashed(n) ? "crashed" : "paused");
    }
    std::printf("\n");
    std::printf("dht: %zu unique hashes across %u shards\n", cluster->total_unique_hashes(),
                cluster->num_nodes());
    if (cluster->placement().replication() > 1) {
      std::printf("replication: R=%u;", cluster->placement().replication());
      bool any_dirty = false;
      for (std::uint32_t n = 0; n < cluster->num_nodes(); ++n) {
        const auto& dirty = cluster->daemon(node_id(n)).dirty_shards();
        if (dirty.empty()) continue;
        any_dirty = true;
        std::printf(" node %u: %zu dirty (refusing reads)", n, dirty.size());
      }
      if (!any_dirty) std::printf(" all replicas in sync");
      std::printf("\n");
    }
    const std::uint64_t batched =
        cluster->metrics().counter_total("core", "updates_batched");
    std::uint64_t batch_dgrams = 0, batch_max = 0;
    cluster->metrics().for_each([&](const obs::MetricKey& key, const obs::Registry::Cell& c) {
      if (key.subsystem == "net" && key.name == "batch_fill") {
        const auto& h = std::get<obs::Histogram>(c);
        batch_dgrams += h.count();
        if (h.max() > batch_max) batch_max = h.max();
      }
    });
    if (batch_dgrams > 0) {
      std::printf("batching: %llu updates in %llu datagrams (avg %llu/dgram, max %llu)\n",
                  static_cast<unsigned long long>(batched),
                  static_cast<unsigned long long>(batch_dgrams),
                  static_cast<unsigned long long>(batched / batch_dgrams),
                  static_cast<unsigned long long>(batch_max));
    }
    for (std::uint32_t n = 0; n < cluster->num_nodes(); ++n) {
      const auto& store = cluster->daemon(node_id(n)).store();
      std::printf("  node %u: %zu hashes, %.1f KB, %zu entities tracked\n", n,
                  store.unique_hashes(), static_cast<double>(store.memory_bytes()) / 1e3,
                  cluster->daemon(node_id(n)).monitor().tracked_entities());
    }
    std::printf("integrity: %llu corrupt datagrams dropped; %llu entries quarantined, "
                "%llu repaired; %llu torn writes, %llu rot flips\n",
                static_cast<unsigned long long>(
                    cluster->metrics().counter_total("net", "msgs_corrupt_dropped")),
                static_cast<unsigned long long>(
                    cluster->metrics().counter_total("dht", "entries_quarantined")),
                static_cast<unsigned long long>(
                    cluster->metrics().counter_total("dht", "entries_repaired")),
                static_cast<unsigned long long>(cluster->fs().torn_writes()),
                static_cast<unsigned long long>(cluster->fs().rot_flips()));
    std::printf("fs: %.1f KB in %zu files; virtual time %.2f ms\n",
                static_cast<double>(cluster->fs().total_bytes()) / 1e3,
                cluster->fs().list().size(),
                static_cast<double>(cluster->sim().now()) / 1e6);
    // The shell is quiescent between commands, so the conservation-style
    // invariants are checkable right now.
    const std::size_t viol_now = cluster->check_invariants();
    const obs::Watchdog& wd = cluster->watchdog();
    std::printf("watchdog: %zu invariants, %llu runs, %llu violations ever; "
                "blackbox %llu dumps\n",
                wd.invariant_count(), static_cast<unsigned long long>(wd.runs()),
                static_cast<unsigned long long>(wd.violations()),
                static_cast<unsigned long long>(cluster->blackbox().dumps()));
    if (viol_now > 0) {
      for (const auto& f : wd.last_findings()) {
        std::printf("  ! %s: %s\n", f.invariant.c_str(), f.detail.c_str());
      }
    }
  }

  void cmd_blackbox(std::istringstream& args) {
    if (!require_cluster()) return;
    std::uint32_t node = 0;
    if (args >> node) {
      if (node >= cluster->num_nodes()) {
        std::puts("no such node");
        return;
      }
      std::printf("node %u: %llu events recorded (ring keeps %zu)\n%s\n", node,
                  static_cast<unsigned long long>(cluster->blackbox().recorded(node)),
                  cluster->blackbox().capacity(),
                  cluster->blackbox().to_json(node).c_str());
      return;
    }
    std::printf("%s\n", cluster->blackbox().to_json_all("shell").c_str());
  }

  void cmd_pressure() {
    if (!require_cluster()) return;
    const core::PressureController* pc = cluster->pressure();
    if (pc != nullptr) {
      std::puts("node  depth  credits  budget  quota  deferred  shed-local  throttled");
      for (const auto& s : pc->snapshot()) {
        std::printf("%4u  %5zu  %7llu  %6llu  %5llu  %8llu  %10llu  %s\n", raw(s.node),
                    s.ingress_depth, static_cast<unsigned long long>(s.credits),
                    static_cast<unsigned long long>(s.update_budget),
                    static_cast<unsigned long long>(s.flush_quota),
                    static_cast<unsigned long long>(s.flush_deferred),
                    static_cast<unsigned long long>(s.shed_local),
                    s.throttled ? "yes" : "no");
      }
    } else {
      std::puts("pressure controller off (AIMD inactive); fabric view:");
      std::puts("node  depth  shed  credits");
      for (std::uint32_t n = 0; n < cluster->num_nodes(); ++n) {
        const NodeId id = node_id(n);
        std::printf("%4u  %5zu  %4llu  %7llu\n", n, cluster->fabric().ingress_depth(id),
                    static_cast<unsigned long long>(cluster->fabric().traffic(id).msgs_shed),
                    static_cast<unsigned long long>(cluster->daemon(id).batcher().credits()));
      }
    }
    // Breaker map: only non-closed links are interesting.
    bool any_open = false;
    for (std::uint32_t s = 0; s < cluster->num_nodes(); ++s) {
      for (std::uint32_t d = 0; d < cluster->num_nodes(); ++d) {
        if (s == d) continue;
        const net::BreakerState st =
            cluster->fabric().breaker_state(node_id(s), node_id(d));
        if (st == net::BreakerState::kClosed) continue;
        if (!any_open) std::puts("breakers:");
        any_open = true;
        std::printf("  %u->%u %s\n", s, d,
                    st == net::BreakerState::kOpen ? "open" : "half-open");
      }
    }
    if (!any_open) std::puts("breakers: all closed");
    const auto hinted = cluster->detector().hinted();
    if (!hinted.empty()) {
      std::printf("suspicion hints:");
      for (const NodeId n : hinted) std::printf(" %u", raw(n));
      std::printf("\n");
    }
  }

  void cmd_metrics(std::istringstream& args) {
    if (!require_cluster()) return;
    std::string format = "json";
    args >> format;
    if (format == "csv") {
      std::fputs(cluster->metrics().to_csv().c_str(), stdout);
    } else if (format == "json") {
      std::printf("%s\n", cluster->metrics().to_json().c_str());
    } else {
      std::puts("usage: metrics [json|csv]");
    }
  }

  void cmd_trace(std::istringstream& args) {
    if (!require_cluster()) return;
    std::string path;
    if (!(args >> path)) {
      std::puts("usage: trace <file.json>");
      return;
    }
    const std::size_t spans = cluster->tracer().span_count();
    if (!cluster->tracer().write_chrome_json(path)) {
      std::printf("trace: cannot write %s\n", path.c_str());
      return;
    }
    std::printf("trace: %zu spans written to %s (load in chrome://tracing or Perfetto)\n",
                spans, path.c_str());
  }

  bool dispatch(const std::string& line) {
    std::istringstream args(line);
    std::string cmd;
    if (!(args >> cmd) || cmd[0] == '#') return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::puts(
          "cluster <nodes> [loss] [mtu] [R]  create an emulated site (mtu 0 = unbatched\n"
          "                            updates; R > 1 = replicated DHT shards + resync)\n"
          "entity <node> <blocks> [process|vm]\n"
          "fill <id> <moldy|nasty|hpccg|random> [seed]\n"
          "mutate <id> <fraction>      rewrite a fraction of blocks\n"
          "scan                        one monitor epoch, site-wide\n"
          "copies <id> <block>         who holds this block's content?\n"
          "sharing [all|id,id,...]     collective sharing query\n"
          "kshared <k>                 content with >= k replicas\n"
          "checkpoint [all|ids] [dir]  collective checkpoint\n"
          "restore <id>                restore + verify from last checkpoint\n"
          "migrate <id> <node>         content-aware migration\n"
          "audit                       reconcile DHT with ground truth\n"
          "fault <node> <crash|restart|pause|resume>  inject a node fault\n"
          "partition <a> <b>           toggle a symmetric link cut\n"
          "corrupt <rate> [on|off]     bit-flip datagrams in flight (on/off = checksums)\n"
          "rot <file> [offset] [bit]   flip one stored bit (default: mid-file)\n"
          "scrub                       re-hash DHT entries; quarantine + heal corruption\n"
          "detect                      run a failure-detection window\n"
          "stats                       traffic / DHT / fs / clock / watchdog\n"
          "blackbox [node]             dump the flight-recorder ring(s) as JSON\n"
          "pressure                    queue depth / credits / breaker state per node\n"
          "metrics [json|csv]          dump the site-wide metrics registry\n"
          "trace <file>                export phase spans as Chrome trace JSON\n"
          "quit");
      return true;
    }
    if (cmd == "cluster") cmd_cluster(args);
    else if (cmd == "entity") cmd_entity(args);
    else if (cmd == "fill") cmd_fill(args);
    else if (cmd == "mutate") cmd_mutate(args);
    else if (cmd == "scan") cmd_scan();
    else if (cmd == "copies") cmd_copies(args);
    else if (cmd == "sharing") cmd_sharing(args);
    else if (cmd == "kshared") cmd_kshared(args);
    else if (cmd == "checkpoint") cmd_checkpoint(args);
    else if (cmd == "restore") cmd_restore(args);
    else if (cmd == "migrate") cmd_migrate(args);
    else if (cmd == "audit") cmd_audit();
    else if (cmd == "fault") cmd_fault(args);
    else if (cmd == "partition") cmd_partition(args);
    else if (cmd == "corrupt") cmd_corrupt(args);
    else if (cmd == "rot") cmd_rot(args);
    else if (cmd == "scrub") cmd_scrub();
    else if (cmd == "detect") cmd_detect();
    else if (cmd == "stats") cmd_stats();
    else if (cmd == "blackbox") cmd_blackbox(args);
    else if (cmd == "pressure") cmd_pressure();
    else if (cmd == "metrics") cmd_metrics(args);
    else if (cmd == "trace") cmd_trace(args);
    else std::printf("unknown command '%s' (try help)\n", cmd.c_str());
    return true;
  }
};

constexpr const char* kDemoScript[] = {
    "cluster 4 0.02",
    "entity 0 128", "entity 1 128", "entity 2 128 vm", "entity 3 128 vm",
    "fill 0 moldy 7", "fill 1 moldy 7", "fill 2 moldy 7", "fill 3 nasty 7",
    "scan",
    "sharing all",
    "kshared 3",
    "copies 0 0",
    "checkpoint all demo-ckpt",
    "mutate 0 0.3",
    "scan",
    "checkpoint all demo-ckpt2",
    "restore 0",
    "migrate 1 3",
    "audit",
    "fault 2 crash",
    "partition 0 3",
    "detect",
    "stats",
    "pressure",
    "fault 2 restart",
    "partition 0 3",
    "detect",
    "audit",
    "stats",
    "metrics csv",
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc > 1 && std::string(argv[1]) == "--demo") {
    for (const char* line : kDemoScript) {
      std::printf("concord> %s\n", line);
      if (!shell.dispatch(line)) break;
    }
    return 0;
  }

  std::string line;
  std::printf("concord> ");
  while (std::getline(std::cin, line)) {
    if (!shell.dispatch(line)) break;
    std::printf("concord> ");
  }
  return 0;
}
