// Collective checkpointing of an MPI-like parallel job (§6 of the paper).
//
//   $ ./collective_checkpoint [nodes] [MB_per_rank]
//
// Runs one rank per node with Moldy-like content, checkpoints the job with
// all four strategies the paper compares (Raw, Raw-gzip, ConCORD,
// ConCORD-gzip), prints sizes and response times, then simulates a failure:
// the job's memory is thrown away and every rank is restored from the
// collective checkpoint and verified.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "compress/cgz.hpp"
#include "query/queries.hpp"
#include "services/checkpoint_format.hpp"
#include "services/collective_checkpoint.hpp"
#include "services/raw_checkpoint.hpp"
#include "svc/command_engine.hpp"
#include "workload/workloads.hpp"

using namespace concord;

int main(int argc, char** argv) {
  const std::uint32_t nodes = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  const std::size_t mb_per_rank = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
  const std::size_t blocks = mb_per_rank * 1024 * 1024 / kDefaultBlockSize;

  core::ClusterParams params;
  params.num_nodes = nodes;
  params.max_entities = nodes + 8;
  core::Cluster cluster(params);

  std::printf("== collective checkpoint demo: %u nodes, %zu MB/rank ==\n", nodes, mb_per_rank);

  std::vector<EntityId> ranks;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    mem::MemoryEntity& e =
        cluster.create_entity(node_id(n), EntityKind::kProcess, blocks, kDefaultBlockSize);
    workload::fill(e, workload::defaults_for(workload::Kind::kMoldy, 7));
    ranks.push_back(e.id());
  }
  (void)cluster.scan_all();

  query::QueryEngine queries(cluster);
  const auto sharing = queries.sharing(node_id(0), ranks);
  std::printf("degree of sharing across the job: %.1f%%\n",
              sharing.degree_of_sharing() * 100.0);

  const std::uint64_t raw_bytes =
      static_cast<std::uint64_t>(nodes) * blocks * kDefaultBlockSize;

  // Raw and Raw-gzip baselines.
  const services::RawCheckpointResult raw_ckpt =
      services::raw_checkpoint(cluster, ranks, "raw", false);
  const services::RawCheckpointResult rawgz =
      services::raw_checkpoint(cluster, ranks, "rawgz", true);
  std::printf("Raw:          %8.1f MB  (%.2f ms)\n",
              static_cast<double>(raw_ckpt.total_bytes) / 1e6,
              static_cast<double>(raw_ckpt.response_time) / 1e6);
  std::printf("Raw-gzip:     %8.1f MB  (%.2f ms)\n",
              static_cast<double>(rawgz.compressed_bytes) / 1e6,
              static_cast<double>(rawgz.response_time) / 1e6);

  // The ConCORD collective checkpoint.
  services::CollectiveCheckpointService ckpt(cluster);
  svc::CommandEngine engine(cluster);
  svc::CommandSpec spec;
  spec.service_entities = ranks;
  spec.config.set("ckpt.dir", "ckpt");
  const svc::CommandStats stats = engine.execute(ckpt, spec);
  if (!ok(stats.status)) {
    std::printf("checkpoint failed: %s\n", std::string(to_string(stats.status)).c_str());
    return 1;
  }
  std::printf("ConCORD:      %8.1f MB  (%.2f ms)  [%llu distinct blocks stored once]\n",
              static_cast<double>(ckpt.total_bytes()) / 1e6,
              static_cast<double>(stats.latency()) / 1e6,
              static_cast<unsigned long long>(stats.collective_handled));

  const auto shared = cluster.fs().read_all(ckpt.shared_path());
  const std::size_t ckptgz =
      shared.has_value() ? compress::compressed_size(shared.value()) : 0;
  std::printf("ConCORD-gzip: %8.1f MB  (shared content file recompressed)\n",
              static_cast<double>(ckptgz) / 1e6);
  std::printf("compression ratios vs raw:  raw-gzip %.1f%%  concord %.1f%%\n",
              100.0 * static_cast<double>(rawgz.compressed_bytes) /
                  static_cast<double>(raw_bytes),
              100.0 * static_cast<double>(ckpt.total_bytes()) / static_cast<double>(raw_bytes));

  // Failure! Restore every rank from the collective checkpoint and verify.
  std::printf("simulating failure and restoring %u ranks...\n", nodes);
  for (const EntityId r : ranks) {
    const auto mem =
        services::restore_entity(cluster.fs(), ckpt.se_path(r), ckpt.shared_path());
    if (!mem.has_value()) {
      std::printf("rank %u: restore FAILED\n", raw(r));
      return 1;
    }
    const mem::MemoryEntity& e = cluster.entity(r);
    for (BlockIndex b = 0; b < e.num_blocks(); ++b) {
      const auto want = e.block(b);
      if (!std::equal(want.begin(), want.end(),
                      mem.value().begin() +
                          static_cast<std::ptrdiff_t>(b * e.block_size()))) {
        std::printf("rank %u block %llu: MISMATCH\n", raw(r),
                    static_cast<unsigned long long>(b));
        return 1;
      }
    }
  }
  std::printf("all ranks restored byte-identical.\n");
  return 0;
}
