// Site redundancy report: exercises the full query interface (Fig. 3) the
// way a capacity-planning or fault-tolerance tool would.
//
//   $ ./redundancy_report [nodes] [procs_per_node]
//
// Fills the site with a mix of workloads, then reports per-workload and
// site-wide sharing, the "at least k copies" distribution, and a few
// node-wise drill-downs — the information an application service would use
// to decide whether exploiting redundancy is worthwhile.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "query/queries.hpp"
#include "workload/workloads.hpp"

using namespace concord;

int main(int argc, char** argv) {
  const std::uint32_t nodes = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  const std::uint32_t per_node = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 2;
  constexpr std::size_t kBlocks = 512;

  core::ClusterParams params;
  params.num_nodes = nodes;
  params.max_entities = nodes * per_node + 8;
  core::Cluster cluster(params);

  // Alternate Moldy-like (redundant) and Nasty (unique) processes.
  std::vector<EntityId> moldy, nasty, all;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    for (std::uint32_t i = 0; i < per_node; ++i) {
      mem::MemoryEntity& e =
          cluster.create_entity(node_id(n), EntityKind::kProcess, kBlocks, kDefaultBlockSize);
      const bool is_moldy = (i % 2) == 0;
      workload::fill(e, workload::defaults_for(
                            is_moldy ? workload::Kind::kMoldy : workload::Kind::kNasty, 3));
      (is_moldy ? moldy : nasty).push_back(e.id());
      all.push_back(e.id());
    }
  }
  const mem::ScanStats scan = cluster.scan_all();
  std::printf("== site: %u nodes, %zu entities, %llu blocks tracked, %zu unique hashes ==\n",
              nodes, all.size(), static_cast<unsigned long long>(scan.blocks_hashed),
              cluster.total_unique_hashes());

  query::QueryEngine q(cluster);
  const auto report = [&](const char* label, std::span<const EntityId> set) {
    const query::SharingAnswer a = q.sharing(node_id(0), set);
    std::printf("%-12s DoS %5.1f%%  (%llu copies / %llu distinct; intra %llu, inter %llu)"
                "  [%.2f ms]\n",
                label, a.degree_of_sharing() * 100.0,
                static_cast<unsigned long long>(a.total_copies),
                static_cast<unsigned long long>(a.unique_hashes),
                static_cast<unsigned long long>(a.intra_sharing),
                static_cast<unsigned long long>(a.inter_sharing),
                static_cast<double>(a.latency) / 1e6);
  };
  report("moldy-like:", moldy);
  report("nasty:", nasty);
  report("site-wide:", all);

  // Replica-count distribution: how much content has >= k copies?
  std::printf("content with at least k replicas (candidates for FT placement):\n");
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8}, std::size_t{16}}) {
    const query::KCopyAnswer a = q.num_shared_content(node_id(0), all, k);
    std::printf("  k=%-3zu %llu hashes\n", k, static_cast<unsigned long long>(a.num_hashes));
  }

  // Drill into the most-replicated content.
  const query::KCopyAnswer top = q.shared_content(node_id(0), all, moldy.size());
  std::printf("content present in every moldy-like process: %zu hashes\n", top.hashes.size());
  if (!top.hashes.empty()) {
    const query::NodewiseAnswer who = q.entities(node_id(0), top.hashes.front());
    std::printf("  e.g. %s held by %zu entities\n", top.hashes.front().to_string().c_str(),
                who.entities.size());
  }
  return 0;
}
