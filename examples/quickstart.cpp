// Quickstart: stand up an emulated 4-node site, track two processes, and ask
// ConCORD what it knows.
//
//   $ ./quickstart
//
// Walks the three core capabilities in order: (1) memory update monitoring
// into the distributed content-tracing DHT, (2) node-wise and collective
// queries, (3) a content-aware service command (collective checkpoint).
#include <cstdio>

#include "query/queries.hpp"
#include "services/checkpoint_format.hpp"
#include "services/collective_checkpoint.hpp"
#include "svc/command_engine.hpp"
#include "workload/workloads.hpp"

using namespace concord;

int main() {
  // --- 1. Build a site: 4 nodes, one tracked process on each of two nodes.
  core::ClusterParams params;
  params.num_nodes = 4;
  params.max_entities = 16;
  core::Cluster cluster(params);

  mem::MemoryEntity& proc_a =
      cluster.create_entity(node_id(0), EntityKind::kProcess, 256, kDefaultBlockSize);
  mem::MemoryEntity& proc_b =
      cluster.create_entity(node_id(1), EntityKind::kProcess, 256, kDefaultBlockSize);

  // Give them Moldy-like content: lots of pages shared across the two (a
  // small pool relative to the entity size makes the overlap pronounced).
  auto wp = workload::defaults_for(workload::Kind::kMoldy, 1);
  wp.pool_pages = 96;
  workload::fill(proc_a, wp);
  workload::fill(proc_b, wp);

  // The memory update monitors scan, hash, and publish to the DHT.
  const mem::ScanStats scan = cluster.scan_all();
  std::printf("scan: %llu blocks hashed, %llu updates published, %zu unique hashes tracked\n",
              static_cast<unsigned long long>(scan.blocks_hashed),
              static_cast<unsigned long long>(scan.inserts_emitted),
              cluster.total_unique_hashes());

  // --- 2. Queries (Fig. 3 of the paper).
  query::QueryEngine queries(cluster);

  // Node-wise: who has the content of proc_a's block 0?
  const hash::BlockHasher hasher;
  const ContentHash h = hasher(proc_a.block(0));
  const query::NodewiseAnswer copies = queries.num_copies(node_id(2), h);
  std::printf("num_copies(block0) = %zu  (%.1f us end-to-end)\n", copies.num_copies,
              static_cast<double>(copies.latency) / 1e3);

  // Collective: how much redundancy exists across the two processes?
  const std::vector<EntityId> both = {proc_a.id(), proc_b.id()};
  const query::SharingAnswer sharing = queries.sharing(node_id(0), both);
  std::printf("sharing: %llu copies of %llu distinct blocks — DoS %.1f%% "
              "(intra %llu, inter %llu)\n",
              static_cast<unsigned long long>(sharing.total_copies),
              static_cast<unsigned long long>(sharing.unique_hashes),
              sharing.degree_of_sharing() * 100.0,
              static_cast<unsigned long long>(sharing.intra_sharing),
              static_cast<unsigned long long>(sharing.inter_sharing));

  // --- 3. A content-aware service command: collective checkpoint.
  services::CollectiveCheckpointService ckpt(cluster);
  svc::CommandEngine engine(cluster);
  svc::CommandSpec spec;
  spec.service_entities = both;
  spec.config.set("ckpt.dir", "quickstart");
  const svc::CommandStats stats = engine.execute(ckpt, spec);

  const std::uint64_t raw_bytes = proc_a.memory_bytes() + proc_b.memory_bytes();
  std::printf("checkpoint: %llu distinct hashes handled, %llu/%llu blocks deduped, "
              "size %.1f%% of raw, %.2f ms\n",
              static_cast<unsigned long long>(stats.collective_handled),
              static_cast<unsigned long long>(stats.local_covered),
              static_cast<unsigned long long>(stats.local_blocks),
              100.0 * static_cast<double>(ckpt.total_bytes()) / static_cast<double>(raw_bytes),
              static_cast<double>(stats.latency()) / 1e6);

  // Restore and verify the round trip.
  const auto restored =
      services::restore_entity(cluster.fs(), ckpt.se_path(proc_a.id()), ckpt.shared_path());
  if (!restored.has_value()) {
    std::printf("restore FAILED\n");
    return 1;
  }
  bool identical = true;
  for (BlockIndex b = 0; b < proc_a.num_blocks() && identical; ++b) {
    identical = std::equal(proc_a.block(b).begin(), proc_a.block(b).end(),
                           restored.value().begin() +
                               static_cast<std::ptrdiff_t>(b * proc_a.block_size()));
  }
  std::printf("restore: %s\n", identical ? "byte-identical" : "MISMATCH");
  return identical ? 0 : 1;
}
