// Fault tolerance via maintained content redundancy (the introduction's
// second motivating service).
//
//   $ ./fault_tolerance [nodes] [blocks_per_proc] [k]
//
// The ReplicationGuard tops up every distinct block of the protected
// processes to k replicas on distinct nodes — paying only for content that
// is not already naturally redundant. We then fail a node's process and
// rebuild its memory image purely from the surviving replicas, located
// through the DHT.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "query/queries.hpp"
#include "services/replication_guard.hpp"
#include "workload/workloads.hpp"

using namespace concord;

int main(int argc, char** argv) {
  const std::uint32_t nodes = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
  const std::size_t blocks = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 128;
  const std::size_t k = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 2;

  core::ClusterParams params;
  params.num_nodes = nodes;
  params.max_entities = 2 * nodes + 8;
  core::Cluster cluster(params);

  std::printf("== fault tolerance: %u nodes, k=%zu replicas ==\n", nodes, k);

  std::vector<EntityId> procs;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    mem::MemoryEntity& e =
        cluster.create_entity(node_id(n), EntityKind::kProcess, blocks, kDefaultBlockSize);
    workload::fill(e, workload::defaults_for(workload::Kind::kMoldy, 31));
    procs.push_back(e.id());
  }
  (void)cluster.scan_all();

  services::ReplicationGuard guard(cluster, /*replica_capacity_blocks=*/blocks * nodes);
  const services::ReplicationReport rep = guard.ensure(procs, k);
  std::printf("guard: %llu distinct blocks; %llu already had >= %zu natural replicas (free), "
              "%llu topped up with %llu copies (%.1f KB on the wire)\n",
              static_cast<unsigned long long>(rep.hashes_checked),
              static_cast<unsigned long long>(rep.replicas_leveraged), k,
              static_cast<unsigned long long>(rep.under_replicated),
              static_cast<unsigned long long>(rep.replicas_created),
              static_cast<double>(rep.wire_bytes) / 1e3);

  // Record the victim's manifest, then fail it.
  const EntityId victim = procs[0];
  const hash::BlockHasher hasher;
  std::vector<ContentHash> manifest;
  std::vector<std::vector<std::byte>> original;
  {
    const mem::MemoryEntity& v = cluster.entity(victim);
    for (BlockIndex b = 0; b < v.num_blocks(); ++b) {
      manifest.push_back(hasher(v.block(b)));
      original.emplace_back(v.block(b).begin(), v.block(b).end());
    }
  }
  std::printf("failing process %u on node 0...\n", raw(victim));
  cluster.depart_entity(victim);

  // Rebuild from surviving replicas only, located through the DHT.
  query::QueryEngine queries(cluster);
  std::size_t recovered = 0, lost = 0;
  for (std::size_t b = 0; b < manifest.size(); ++b) {
    bool got = false;
    for (const EntityId cand : queries.entities(node_id(1), manifest[b]).entities) {
      if (!cluster.registry().alive(cand)) continue;
      const NodeId host = cluster.registry().host_of(cand);
      const auto* locs = cluster.daemon(host).block_map().find(manifest[b]);
      if (locs == nullptr) continue;
      for (const mem::BlockLocation& loc : *locs) {
        if (loc.entity != cand) continue;
        const auto donor = cluster.entity(loc.entity).block(loc.block);
        if (hasher(donor) == manifest[b] &&
            std::equal(donor.begin(), donor.end(), original[b].begin())) {
          got = true;
        }
        break;
      }
      if (got) break;
    }
    got ? ++recovered : ++lost;
  }
  std::printf("recovery: %zu/%zu blocks recovered byte-identical from surviving replicas, "
              "%zu lost\n",
              recovered, manifest.size(), lost);
  if (lost != 0) {
    std::printf("(with k>=2 every block should survive a single failure)\n");
    return 1;
  }
  return 0;
}
